"""Traffic-source tests."""

import numpy as np
import pytest

from repro.router import Router, RouterConfig
from repro.traffic import (
    CBRSource,
    FlowSpec,
    OnOffSource,
    PoissonSource,
    wire_uniform_load,
)


def make_router(n=4, seed=0):
    return Router(RouterConfig(n_linecards=n, seed=seed))


def run_source(source_cls, rate_bps=8e6, horizon=1.0, **kw):
    r = make_router()
    flow = FlowSpec(0, 1, rate_bps=rate_bps, mean_packet_bytes=500)
    src = source_cls(r, flow, np.random.default_rng(5), **kw)
    src.start()
    r.run(until=horizon)
    return r, src


class TestCBRSource:
    def test_exact_packet_count(self):
        # 8 Mbps at 500 B = 2000 pkt/s -> 2000 packets in 1 s.
        r, src = run_source(CBRSource)
        assert src.emitted == pytest.approx(2000, abs=2)

    def test_all_packets_offered(self):
        r, src = run_source(CBRSource)
        assert r.stats.offered == src.emitted


class TestPoissonSource:
    def test_mean_rate_approximately_met(self):
        r, src = run_source(PoissonSource)
        assert src.emitted == pytest.approx(2000, rel=0.15)

    def test_sizes_within_ethernet_bounds(self):
        r = make_router()
        flow = FlowSpec(0, 1, rate_bps=8e6, mean_packet_bytes=500)
        src = PoissonSource(r, flow, np.random.default_rng(5))
        sizes = [src._packet_size() for _ in range(200)]
        assert all(64 <= s <= 1500 for s in sizes)


class TestOnOffSource:
    def test_long_run_rate_approximates_mean(self):
        r, src = run_source(OnOffSource, horizon=2.0)
        assert src.emitted == pytest.approx(4000, rel=0.35)

    def test_burstiness_validation(self):
        r = make_router()
        flow = FlowSpec(0, 1, rate_bps=1e6)
        with pytest.raises(ValueError, match="burstiness"):
            OnOffSource(r, flow, np.random.default_rng(0), burstiness=0.5)


class TestStop:
    def test_stop_halts_emission(self):
        r = make_router()
        flow = FlowSpec(0, 1, rate_bps=8e6, mean_packet_bytes=500)
        src = CBRSource(r, flow, np.random.default_rng(5))
        src.start()
        r.run(until=0.5)
        count = src.emitted
        src.stop()
        r.run(until=1.0)
        assert src.emitted <= count + 1


class TestWireUniformLoad:
    def test_sources_cover_all_pairs(self):
        r = make_router(n=4)
        sources = wire_uniform_load(r, 0.2, start=False)
        assert len(sources) == 12  # n(n-1)

    def test_offered_loads_declared(self):
        r = make_router(n=4)
        wire_uniform_load(r, 0.2, start=False)
        for lc in range(4):
            assert r.offered_load(lc) == pytest.approx(2e9)

    def test_started_sources_emit(self):
        r = make_router(n=4)
        wire_uniform_load(r, 0.2)
        r.run(until=0.001)
        assert r.stats.offered > 0


class TestTraceSource:
    def test_exact_replay(self):
        from repro.traffic import TraceSource

        r = make_router()
        trace = [(0.001, 0, 1, 500), (0.002, 1, 2, 800), (0.0005, 2, 3, 64)]
        src = TraceSource(r, trace)
        src.start()
        r.run(until=0.01)
        assert src.emitted == 3
        assert r.stats.offered == 3
        assert r.stats.delivered == 3

    def test_trace_sorted_on_construction(self):
        from repro.traffic import TraceSource

        r = make_router()
        src = TraceSource(r, [(0.002, 0, 1, 100), (0.001, 0, 1, 100)])
        assert src.trace[0][0] == 0.001

    def test_malformed_entries_rejected(self):
        from repro.traffic import TraceSource

        r = make_router()
        with pytest.raises(ValueError):
            TraceSource(r, [(-1.0, 0, 1, 100)])
        with pytest.raises(ValueError):
            TraceSource(r, [(0.0, 0, 1, 0)])
        with pytest.raises(ValueError):
            TraceSource(r, [(0.0, 0, 99, 100)])

    def test_default_rng_derives_from_router_seed(self):
        # Regression for the DRA501 fix: the address stream must come
        # from the router's SeedSequence.spawn chain, not a fixed seed,
        # so two routers with different config seeds draw differently
        # while the same seed stays exactly reproducible.
        from repro.traffic import TraceSource

        def drawn(seed):
            r = make_router(seed=seed)
            src = TraceSource(r, [(0.001, 0, 1, 500)])
            return [int(src.rng.integers(0, 2**31)) for _ in range(4)]

        assert drawn(0) == drawn(0)
        assert drawn(0) != drawn(1)

    def test_explicit_rng_still_honoured(self):
        from repro.traffic import TraceSource

        r = make_router()
        rng = np.random.default_rng(7)
        src = TraceSource(r, [(0.001, 0, 1, 500)], rng=rng)
        assert src.rng is rng

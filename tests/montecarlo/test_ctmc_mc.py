"""CTMC trajectory-sampling tests."""

import numpy as np
import pytest

from repro.markov import stationary_distribution, transient_distribution
from repro.montecarlo import (
    empirical_availability,
    empirical_state_probabilities,
    sample_trajectory,
)
from repro.validate import (
    assert_distribution_rows,
    assert_mc_fraction_consistent,
    assert_mc_mean_consistent,
)


class TestSampleTrajectory:
    def test_starts_at_initial_state(self, two_state_chain, rng):
        traj = sample_trajectory(two_state_chain, 10.0, rng)
        assert traj.states[0] == 0
        assert traj.times[0] == 0.0

    def test_times_strictly_increasing(self, two_state_chain, rng):
        traj = sample_trajectory(two_state_chain, 50.0, rng)
        assert np.all(np.diff(traj.times) > 0)

    def test_absorbing_trajectory_terminates(self, absorbing_chain, rng):
        traj = sample_trajectory(absorbing_chain, 1e9, rng)
        assert traj.states[-1] == absorbing_chain.index_of("dead")

    def test_state_at_lookup(self, two_state_chain, rng):
        traj = sample_trajectory(two_state_chain, 10.0, rng)
        for k in range(len(traj.times) - 1):
            mid = 0.5 * (traj.times[k] + traj.times[k + 1])
            assert traj.state_at(mid) == traj.states[k]

    def test_state_at_negative_time_rejected(self, two_state_chain, rng):
        traj = sample_trajectory(two_state_chain, 1.0, rng)
        with pytest.raises(ValueError):
            traj.state_at(-1.0)

    def test_jumps_follow_generator_support(self, absorbing_chain, rng):
        allowed = set()
        Q = absorbing_chain.generator.tocoo()
        for i, j, q in zip(Q.row, Q.col, Q.data):
            if i != j and q > 0:
                allowed.add((i, j))
        for _ in range(50):
            traj = sample_trajectory(absorbing_chain, 100.0, rng)
            for a, b in zip(traj.states, traj.states[1:]):
                assert (a, b) in allowed


class TestEmpiricalTransient:
    def test_matches_solver_within_error(self, two_state_chain, rng):
        times = np.array([0.5, 2.0, 10.0])
        n = 4000
        emp = empirical_state_probabilities(two_state_chain, times, n, rng)
        exact = transient_distribution(two_state_chain, times)
        for i, t in enumerate(times):
            for s in range(exact.shape[1]):
                assert_mc_fraction_consistent(
                    int(round(emp[i, s] * n)), n, float(exact[i, s]),
                    label=f"state {s} at t={t}",
                )

    def test_rows_are_frequencies(self, absorbing_chain, rng):
        emp = empirical_state_probabilities(
            absorbing_chain, np.array([1.0, 5.0]), 300, rng
        )
        assert_distribution_rows(emp, label="empirical frequencies")


class TestEmpiricalAvailability:
    def test_matches_stationary(self, two_state_chain, rng):
        pi = stationary_distribution(two_state_chain)
        down_idx = two_state_chain.index_of("down")
        est, se = empirical_availability(
            two_state_chain, down_idx, horizon=2000.0, n_samples=60, rng=rng
        )
        assert_mc_mean_consistent(
            est, se, 1.0 - pi[down_idx], label="availability"
        )

    def test_invalid_warmup_rejected(self, two_state_chain, rng):
        with pytest.raises(ValueError, match="warmup"):
            empirical_availability(
                two_state_chain, 1, 10.0, 5, rng, warmup_fraction=1.0
            )

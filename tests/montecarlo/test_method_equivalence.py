"""The batched/scalar method contract (docs/performance.md).

Every vectorized Monte Carlo kernel keeps its original scalar loop as a
``method="scalar"`` reference.  The contract, over a seed matrix:

* ``lifetime``: both methods draw the *same* numpy batches and evaluate
  an exact max/min structure function, so they are **bit-identical**;
* ``importance`` / ``ctmc_mc``: the batched kernels consume the RNG
  stream in a different order, so results are not bit-identical -- each
  method must independently agree with the analytic solvers within its
  own confidence interval, and each method must be a deterministic
  function of its seed.
"""

import numpy as np
import pytest

from repro.core import DRAConfig, RepairPolicy, dra_availability
from repro.core.availability import build_dra_availability_chain
from repro.core.states import Failed
from repro.markov import transient_distribution
from repro.montecarlo import (
    collect_cycle_statistics,
    empirical_state_probabilities,
    result_from_statistics,
    sample_lc_failure_times,
    unavailability_importance_sampling,
)
from repro.validate import assert_mc_fraction_consistent

SEED_MATRIX = [0, 1, 12345]


class TestLifetimeBitIdentity:
    @pytest.mark.parametrize("seed", SEED_MATRIX)
    def test_scalar_reproduces_vectorized_bitwise(self, seed):
        cfg = DRAConfig(n=9, m=4)
        vec = sample_lc_failure_times(cfg, 500, np.random.default_rng(seed))
        sc = sample_lc_failure_times(
            cfg, 500, np.random.default_rng(seed), method="scalar"
        )
        assert np.array_equal(vec, sc)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            sample_lc_failure_times(
                DRAConfig(n=3, m=2), 10, np.random.default_rng(0), method="mystery"
            )


class TestImportanceSamplingMethods:
    @pytest.mark.parametrize("seed", SEED_MATRIX)
    @pytest.mark.parametrize("method", ["batched", "scalar"])
    def test_each_method_consistent_with_exact(self, seed, method):
        rp = RepairPolicy.three_hours()
        cfg = DRAConfig(n=3, m=2)
        chain = build_dra_availability_chain(cfg, rp)
        exact = 1.0 - dra_availability(cfg, rp).availability
        res = unavailability_importance_sampling(
            chain, Failed, 8_000, np.random.default_rng(seed), method=method
        )
        assert res.consistent_with(exact, z=6.0)
        assert res.hit_fraction > 0.05

    @pytest.mark.parametrize("method", ["batched", "scalar"])
    def test_method_is_deterministic_in_seed(self, method):
        chain = build_dra_availability_chain(
            DRAConfig(n=3, m=2), RepairPolicy.three_hours()
        )
        runs = [
            collect_cycle_statistics(
                chain, Failed, 1_000, np.random.default_rng(7), method=method
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert result_from_statistics(runs[0]) == result_from_statistics(runs[1])

    def test_unknown_method_rejected(self, two_state_chain, rng):
        with pytest.raises(ValueError, match="method"):
            collect_cycle_statistics(
                two_state_chain, "down", 100, rng, method="mystery"
            )


class TestTrajectoryMethods:
    @pytest.mark.parametrize("seed", SEED_MATRIX)
    @pytest.mark.parametrize("method", ["batched", "scalar"])
    def test_each_method_consistent_with_solver(
        self, seed, method, two_state_chain
    ):
        times = np.array([0.5, 2.0, 10.0])
        n = 2_000
        emp = empirical_state_probabilities(
            two_state_chain, times, n, np.random.default_rng(seed), method=method
        )
        exact = transient_distribution(two_state_chain, times)
        for i, t in enumerate(times):
            for s in range(exact.shape[1]):
                assert_mc_fraction_consistent(
                    int(round(emp[i, s] * n)), n, float(exact[i, s]),
                    z=5.0, label=f"{method} state {s} at t={t}",
                )

    @pytest.mark.parametrize("method", ["batched", "scalar"])
    def test_method_is_deterministic_in_seed(self, method, two_state_chain):
        times = np.array([1.0, 4.0])
        runs = [
            empirical_state_probabilities(
                two_state_chain, times, 500, np.random.default_rng(3), method=method
            )
            for _ in range(2)
        ]
        assert np.array_equal(runs[0], runs[1])

    def test_unknown_method_rejected(self, two_state_chain, rng):
        with pytest.raises(ValueError, match="method"):
            empirical_state_probabilities(
                two_state_chain, np.array([1.0]), 10, rng, method="mystery"
            )

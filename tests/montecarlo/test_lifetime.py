"""Structure-function Monte Carlo tests."""

import numpy as np
import pytest

from repro.core import DRAConfig, FailureRates, dra_reliability
from repro.montecarlo import (
    sample_lc_failure_times,
    structure_function_reliability,
)


class TestSampling:
    def test_failure_times_positive(self, rng):
        times = sample_lc_failure_times(DRAConfig(n=5, m=3), 1000, rng)
        assert times.shape == (1000,)
        assert times.min() > 0.0

    def test_deterministic_under_seed(self):
        cfg = DRAConfig(n=4, m=2)
        a = sample_lc_failure_times(cfg, 100, np.random.default_rng(3))
        b = sample_lc_failure_times(cfg, 100, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_more_coverage_longer_lifetimes(self, rng):
        small = sample_lc_failure_times(DRAConfig(n=3, m=2), 20_000, rng).mean()
        large = sample_lc_failure_times(DRAConfig(n=9, m=8), 20_000, rng).mean()
        assert large > small


class TestAgreementWithChain:
    @pytest.mark.parametrize("n, m", [(3, 2), (5, 3), (9, 4)])
    def test_matches_extended_variant(self, n, m, rng):
        """The structure function IS the extended chain's absorption time."""
        cfg = DRAConfig(n=n, m=m, variant="extended")
        t = np.array([10_000.0, 40_000.0, 100_000.0])
        exact = dra_reliability(cfg, t).reliability
        mc = structure_function_reliability(cfg, t, 120_000, rng)
        assert mc.within(exact, z=4.5), (
            f"MC {mc.reliability} vs exact {exact} (se {mc.std_error})"
        )

    def test_diverges_from_paper_variant_eventually(self, rng):
        """At long horizons the paper variant (truncated grid) is visibly
        more optimistic than the physical structure function."""
        cfg_paper = DRAConfig(n=3, m=2, variant="paper")
        t = np.array([150_000.0])
        exact_paper = dra_reliability(cfg_paper, t).reliability
        mc = structure_function_reliability(
            DRAConfig(n=3, m=2, variant="extended"), t, 120_000, rng
        )
        assert exact_paper[0] - mc.reliability[0] > 10 * mc.std_error[0]

    def test_custom_rates(self, rng):
        cfg = DRAConfig(n=4, m=2, variant="extended")
        fast = FailureRates().scaled(3.0)
        t = np.array([20_000.0])
        exact = dra_reliability(cfg, t, fast).reliability
        mc = structure_function_reliability(cfg, t, 80_000, rng, fast)
        assert mc.within(exact, z=4.5)


class TestEstimateObject:
    def test_std_error_shrinks_with_samples(self, rng):
        cfg = DRAConfig(n=4, m=2)
        t = np.array([40_000.0])
        small = structure_function_reliability(cfg, t, 1_000, rng)
        large = structure_function_reliability(cfg, t, 100_000, rng)
        assert large.std_error[0] < small.std_error[0]

    def test_within_rejects_distant_curve(self, rng):
        cfg = DRAConfig(n=4, m=2)
        t = np.array([40_000.0])
        mc = structure_function_reliability(cfg, t, 10_000, rng)
        assert not mc.within(mc.reliability + 0.1)

"""Importance-sampling (balanced failure biasing) tests."""

import pytest

from repro.core import DRAConfig, RepairPolicy, bdr_availability, dra_availability
from repro.core.availability import (
    build_bdr_availability_chain,
    build_dra_availability_chain,
)
from repro.core.states import Failed
from repro.montecarlo import unavailability_importance_sampling


class TestOnAnalyticChains:
    def test_bdr_two_state(self, rng):
        """Non-rare case: IS must still be unbiased."""
        rp = RepairPolicy.three_hours()
        chain = build_bdr_availability_chain(rp)
        exact = 1.0 - bdr_availability(rp).availability
        res = unavailability_importance_sampling(chain, Failed, 4000, rng)
        assert res.consistent_with(exact, z=5.0)

    @pytest.mark.parametrize("n, m", [(3, 2), (4, 2)])
    def test_dra_rare_event(self, n, m, rng):
        """The headline capability: verifying ~1e-9 unavailability."""
        rp = RepairPolicy.three_hours()
        cfg = DRAConfig(n=n, m=m)
        chain = build_dra_availability_chain(cfg, rp)
        exact = 1.0 - dra_availability(cfg, rp).availability
        assert exact < 1e-8  # genuinely rare
        res = unavailability_importance_sampling(chain, Failed, 30_000, rng)
        assert res.consistent_with(exact, z=6.0)
        assert res.hit_fraction > 0.05  # biasing actually reaches F

    def test_relative_error_small(self, rng):
        rp = RepairPolicy.three_hours()
        chain = build_dra_availability_chain(DRAConfig(n=3, m=2), rp)
        res = unavailability_importance_sampling(chain, Failed, 30_000, rng)
        assert res.std_error / res.unavailability < 0.15


class TestValidation:
    def test_bias_bounds(self, two_state_chain, rng):
        with pytest.raises(ValueError, match="bias"):
            unavailability_importance_sampling(
                two_state_chain, "down", 100, rng, bias=1.0
            )

    def test_min_cycles(self, two_state_chain, rng):
        with pytest.raises(ValueError, match="cycles"):
            unavailability_importance_sampling(two_state_chain, "down", 1, rng)

    def test_failed_cannot_be_regeneration(self, two_state_chain, rng):
        with pytest.raises(ValueError, match="anchor"):
            unavailability_importance_sampling(
                two_state_chain, "up", 100, rng
            )

    def test_result_properties(self, two_state_chain, rng):
        res = unavailability_importance_sampling(two_state_chain, "down", 2000, rng)
        assert res.availability == pytest.approx(1.0 - res.unavailability)
        assert res.n_cycles == 2000
        assert res.mean_cycle_length > 0.0

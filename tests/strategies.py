"""Shared hypothesis strategies for the property-based tests.

Strategies that more than one test module draws from live here so the
generators stay consistent (same size ranges, same float bounds) across
the EIB channel tests and the bandwidth-algebra tests.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.performance import PerformanceModel

__all__ = [
    "transfer_scripts",
    "bandwidth_requests",
    "performance_models",
    "loads",
]


@st.composite
def transfer_scripts(draw):
    """Random open/enqueue/close scripts over 3 LCs."""
    n_ops = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for _ in range(n_ops):
        ops.append(
            (
                draw(st.sampled_from(["open", "enqueue", "close"])),
                draw(st.integers(min_value=0, max_value=2)),
                draw(st.integers(min_value=64, max_value=5000)),
            )
        )
    return ops


#: Per-LC bandwidth requests in bps: a few LCs, each asking for
#: anything from nothing to well past a single bus.
bandwidth_requests = st.lists(
    st.floats(
        min_value=0.0, max_value=40e9, allow_nan=False, allow_subnormal=False
    ),
    min_size=1,
    max_size=16,
)


#: Offered loads strictly below saturation (the Section 5.3 algebra is
#: defined on [0, 1)).
loads = st.floats(min_value=0.0, max_value=0.95, allow_nan=False)


@st.composite
def performance_models(draw) -> PerformanceModel:
    """Section 5.3 router models: N linecards, optionally a binding bus."""
    n = draw(st.integers(min_value=2, max_value=12))
    c_lc = draw(st.floats(min_value=1.0, max_value=40.0, allow_nan=False))
    binding_bus = draw(st.booleans())
    if binding_bus:
        b_bus = draw(
            st.floats(min_value=c_lc, max_value=2.0 * n * c_lc, allow_nan=False)
        )
    else:
        b_bus = None
    return PerformanceModel(n=n, c_lc=c_lc, b_bus=b_bus)

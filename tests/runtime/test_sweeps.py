"""Parallel sweeps must be indistinguishable from their serial originals."""

import numpy as np

from repro.analysis.sweep import (
    availability_sweep,
    performance_sweep,
    reliability_sweep,
)
from repro.core import RepairPolicy
from repro.runtime import (
    ResultCache,
    RuntimeMetrics,
    parallel_availability_sweep,
    parallel_performance_sweep,
    parallel_reliability_sweep,
)

TIMES = np.linspace(0.0, 100_000.0, 6)
CONFIGS = [(3, 2), (5, 3), (9, 4)]


class TestReliabilitySweep:
    def test_matches_serial_records_exactly(self):
        serial = reliability_sweep(times=TIMES, configs=CONFIGS)
        for jobs in (1, 2):
            assert parallel_reliability_sweep(
                times=TIMES, configs=CONFIGS, jobs=jobs
            ) == serial

    def test_variant_and_no_bdr_forwarded(self):
        serial = reliability_sweep(
            times=TIMES, configs=[(4, 2)], variant="extended", include_bdr=False
        )
        parallel = parallel_reliability_sweep(
            times=TIMES, configs=[(4, 2)], variant="extended",
            include_bdr=False, jobs=2,
        )
        assert parallel == serial

    def test_cache_round_trip_preserves_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = parallel_reliability_sweep(
            times=TIMES, configs=CONFIGS, jobs=1, cache=cache
        )
        assert cache.misses == len(CONFIGS) + 1  # +1 for the BDR curve
        warm = parallel_reliability_sweep(
            times=TIMES, configs=CONFIGS, jobs=1, cache=cache
        )
        assert warm == cold
        assert cache.hits == len(CONFIGS) + 1

    def test_cache_key_separates_variants(self, tmp_path):
        cache = ResultCache(tmp_path)
        paper = parallel_reliability_sweep(
            times=TIMES, configs=[(3, 2)], include_bdr=False, cache=cache
        )
        extended = parallel_reliability_sweep(
            times=TIMES, configs=[(3, 2)], include_bdr=False,
            variant="extended", cache=cache,
        )
        assert cache.hits == 0
        assert paper != extended

    def test_metrics_recorded(self):
        metrics = RuntimeMetrics()
        records = parallel_reliability_sweep(
            times=TIMES, configs=[(3, 2)], metrics=metrics
        )
        assert len(metrics.stages) == 1
        assert metrics.stages[0].items == len(records)
        assert metrics.stages[0].wall_s >= 0.0
        assert "points" in metrics.format_table()


class TestAvailabilitySweep:
    def test_matches_serial_records_exactly(self):
        serial = availability_sweep(configs=CONFIGS)
        for jobs in (1, 2):
            assert parallel_availability_sweep(configs=CONFIGS, jobs=jobs) == serial

    def test_custom_repairs_forwarded(self):
        repairs = [RepairPolicy(mu=0.1)]
        serial = availability_sweep(configs=[(3, 2)], repairs=repairs)
        assert parallel_availability_sweep(
            configs=[(3, 2)], repairs=repairs, jobs=2
        ) == serial

    def test_cache_hits_on_second_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = parallel_availability_sweep(configs=[(3, 2)], cache=cache)
        warm = parallel_availability_sweep(configs=[(3, 2)], cache=cache)
        assert warm == cold
        # Two repair policies x (BDR + one config) = 4 units each way.
        assert cache.misses == 4 and cache.hits == 4


class TestPerformanceSweep:
    def test_matches_serial_records_exactly(self):
        assert parallel_performance_sweep(jobs=4) == performance_sweep()

    def test_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = parallel_performance_sweep(cache=cache)
        warm = parallel_performance_sweep(cache=cache)
        assert warm == cold and cache.hits == 1

"""Determinism guarantee of the parallel Monte Carlo drivers.

The load-bearing property (and the PR's acceptance criterion): for a
fixed root seed, results are **bit-identical** whatever the worker
count, because chunk boundaries and per-chunk RNG streams depend only on
the trial budget and the seed.
"""

import numpy as np
import pytest

from repro.core import DRAConfig, RepairPolicy
from repro.montecarlo import (
    CycleStatistics,
    collect_cycle_statistics,
    result_from_statistics,
    structure_function_reliability,
    unavailability_importance_sampling,
)
from repro.core.availability import build_dra_availability_chain
from repro.core.states import Failed
from repro.runtime import (
    parallel_structure_function_reliability,
    parallel_unavailability_importance_sampling,
)
from repro.runtime.montecarlo import _chunk_sizes

TIMES = np.linspace(0.0, 100_000.0, 9)


class TestChunkSizes:
    def test_exact_division(self):
        assert _chunk_sizes(10, 5) == [5, 5]

    def test_remainder_becomes_last_chunk(self):
        assert _chunk_sizes(11, 5) == [5, 5, 1]

    def test_small_remainder_folded_to_respect_minimum(self):
        assert _chunk_sizes(11, 5, minimum=2) == [5, 6]

    def test_total_below_minimum_rejected(self):
        with pytest.raises(ValueError, match="at least"):
            _chunk_sizes(1, 5, minimum=2)

    def test_sizes_sum_to_total(self):
        for total in (1, 7, 100, 65_537, 1_000_000):
            assert sum(_chunk_sizes(total, 65_536)) == total


class TestStructureFunctionDeterminism:
    def test_jobs_1_vs_jobs_4_bit_identical(self):
        kwargs = dict(chunk_trials=10_000)
        cfg = DRAConfig(n=5, m=3)
        one = parallel_structure_function_reliability(
            cfg, TIMES, 50_000, 1234, jobs=1, **kwargs
        )
        four = parallel_structure_function_reliability(
            cfg, TIMES, 50_000, 1234, jobs=4, **kwargs
        )
        assert np.array_equal(one.reliability, four.reliability)
        assert np.array_equal(one.std_error, four.std_error)
        assert one.n_samples == four.n_samples == 50_000

    def test_different_seeds_differ(self):
        cfg = DRAConfig(n=5, m=3)
        a = parallel_structure_function_reliability(cfg, TIMES, 20_000, 0, jobs=1)
        b = parallel_structure_function_reliability(cfg, TIMES, 20_000, 1, jobs=1)
        assert not np.array_equal(a.reliability, b.reliability)

    def test_agrees_with_serial_estimator(self):
        # Same structure function, so the parallel estimate must sit within
        # Monte Carlo error of the single-stream serial estimator.
        cfg = DRAConfig(n=4, m=2)
        par = parallel_structure_function_reliability(cfg, TIMES, 60_000, 7, jobs=2)
        ser = structure_function_reliability(
            cfg, TIMES, 60_000, np.random.default_rng(7)
        )
        assert par.within(ser.reliability, z=5.0)


class TestImportanceSamplingDeterminism:
    def test_jobs_1_vs_jobs_4_bit_identical(self):
        cfg = DRAConfig(n=3, m=2)
        repair = RepairPolicy.three_hours()
        one = parallel_unavailability_importance_sampling(
            cfg, repair, 4_000, 99, jobs=1, chunk_cycles=1_000
        )
        four = parallel_unavailability_importance_sampling(
            cfg, repair, 4_000, 99, jobs=4, chunk_cycles=1_000
        )
        assert one.unavailability == four.unavailability
        assert one.std_error == four.std_error
        assert one.hit_fraction == four.hit_fraction
        assert one.mean_cycle_length == four.mean_cycle_length

    def test_consistent_with_exact_unavailability(self):
        from repro.core import dra_availability

        cfg = DRAConfig(n=3, m=2)
        repair = RepairPolicy.three_hours()
        exact = 1.0 - dra_availability(cfg, repair).availability
        res = parallel_unavailability_importance_sampling(
            cfg, repair, 6_000, 5, jobs=2, chunk_cycles=1_500
        )
        assert res.consistent_with(exact, z=6.0)


class TestCycleStatistics:
    def test_merge_is_field_wise_addition(self):
        a = CycleStatistics(2, 1.0, 2.0, 2, 3.0, 4.0, 1)
        b = CycleStatistics(3, 10.0, 20.0, 3, 30.0, 40.0, 2)
        m = a.merge(b)
        assert m == CycleStatistics(5, 11.0, 22.0, 5, 33.0, 44.0, 3)

    def test_wrapper_matches_collect_plus_result(self):
        # unavailability_importance_sampling is now a thin wrapper; the
        # composed path must give the identical result for the same rng.
        chain = build_dra_availability_chain(
            DRAConfig(n=3, m=2), RepairPolicy.three_hours()
        )
        direct = unavailability_importance_sampling(
            chain, Failed, 2_000, np.random.default_rng(11)
        )
        stats = collect_cycle_statistics(
            chain, Failed, 2_000, np.random.default_rng(11)
        )
        composed = result_from_statistics(stats)
        assert composed.unavailability == direct.unavailability
        assert composed.std_error == direct.std_error

    def test_result_requires_both_cycle_kinds(self):
        with pytest.raises(ValueError, match="at least one plain"):
            result_from_statistics(CycleStatistics(0, 0.0, 0.0, 5, 1.0, 1.0, 0))

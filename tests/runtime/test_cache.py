"""Content-addressed cache tests: key stability, storage, invalidation."""

import numpy as np
import pytest

from repro.core import DRAConfig, FailureRates, RepairPolicy
from repro.runtime import ResultCache, stable_hash
from repro.runtime.cache import CACHE_SCHEMA_VERSION


class TestStableHash:
    def test_equal_inputs_equal_hash(self):
        a = stable_hash(DRAConfig(n=5, m=3), FailureRates(), np.linspace(0, 1, 5))
        b = stable_hash(DRAConfig(n=5, m=3), FailureRates(), np.linspace(0, 1, 5))
        assert a == b

    def test_dataclass_field_changes_hash(self):
        assert stable_hash(DRAConfig(n=5, m=3)) != stable_hash(DRAConfig(n=5, m=4))
        assert stable_hash(RepairPolicy.three_hours()) != stable_hash(
            RepairPolicy.half_day()
        )

    def test_array_contents_and_shape_matter(self):
        flat = np.zeros(4)
        assert stable_hash(flat) != stable_hash(np.zeros(5))
        assert stable_hash(flat) != stable_hash(flat.reshape(2, 2))
        bumped = flat.copy()
        bumped[0] = 1e-300
        assert stable_hash(flat) != stable_hash(bumped)

    def test_type_tags_prevent_cross_type_collisions(self):
        assert stable_hash(1) != stable_hash(1.0)
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(True) != stable_hash(1)
        assert stable_hash(None) != stable_hash("None")

    def test_container_shape_matters(self):
        assert stable_hash([1, 2], [3]) != stable_hash([1], [2, 3])

    def test_unhashable_object_rejected(self):
        with pytest.raises(TypeError, match="cannot canonically hash"):
            stable_hash(object())


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("unit", config=DRAConfig(n=3, m=2))
        assert cache.get(key) == (False, None)
        cache.put(key, {"answer": 42})
        hit, value = cache.get(key)
        assert hit and value == {"answer": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_key_mixes_version_and_schema(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        base = cache.key("unit", n=1)
        monkeypatch.setattr("repro.__version__", "0.0.0-test")
        assert cache.key("unit", n=1) != base
        # The schema version participates too (a manual recomputation).
        assert stable_hash("unit", "0.0.0-test", CACHE_SCHEMA_VERSION, {"n": 1}) == (
            cache.key("unit", n=1)
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("unit", n=1)
        cache.put(key, [1, 2, 3])
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        hit, value = cache.get(key)
        assert not hit and value is None

    def test_get_or_compute_computes_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("unit", n=2)
        calls = []
        for _ in range(3):
            value = cache.get_or_compute(key, lambda: calls.append(1) or "result")
        assert value == "result"
        assert len(calls) == 1

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        for n in range(4):
            cache.put(cache.key("unit", n=n), n)
        assert cache.clear() == 4
        assert cache.get(cache.key("unit", n=0)) == (False, None)

    def test_env_var_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envroot"))
        cache = ResultCache()
        assert cache.root == tmp_path / "envroot"

"""Process-pool map tests."""

import pytest

from repro.obs.metrics import MetricsRegistry, collecting, get_registry
from repro.runtime import effective_jobs, metered_parallel_map, parallel_map
from repro.runtime.executor import default_chunksize


def _square(x: int) -> int:
    return x * x


def _square_counted(x: int) -> int:
    registry = get_registry()
    if registry is not None:
        registry.counter("squares").inc()
        registry.gauge("last_input").set(float(x))
    return x * x


class TestEffectiveJobs:
    def test_explicit_passthrough(self):
        assert effective_jobs(3) == 3

    def test_zero_and_none_mean_all_cores(self):
        assert effective_jobs(0) >= 1
        assert effective_jobs(None) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            effective_jobs(-2)


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(_square, range(7), jobs=1) == [x * x for x in range(7)]

    def test_pool_path_preserves_order(self):
        assert parallel_map(_square, range(13), jobs=2) == [x * x for x in range(13)]

    def test_single_item_stays_in_process(self):
        # One item never justifies a pool, whatever jobs says.
        local = []
        parallel_map(local.append, [5], jobs=8)
        assert local == [5]

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_chunksize_floor(self):
        assert default_chunksize(1, 8) == 1
        assert default_chunksize(100, 2) == 12


class TestMeteredParallelMap:
    def test_no_registry_is_plain_map(self):
        assert metered_parallel_map(_square, range(5), jobs=2) == [
            x * x for x in range(5)
        ]

    def test_pool_metrics_match_serial(self):
        # The driver registry must see identical content whether the work
        # ran in-process or fanned out over workers.
        with collecting(MetricsRegistry()) as serial_reg:
            serial = metered_parallel_map(_square_counted, range(9), jobs=1)
        with collecting(MetricsRegistry()) as pool_reg:
            pooled = metered_parallel_map(_square_counted, range(9), jobs=3)
        assert pooled == serial
        assert pool_reg.snapshot() == serial_reg.snapshot()
        assert pool_reg.counter("squares").value == 9
        # Snapshots merge in submission order, so "last" is the last item.
        assert pool_reg.gauge("last_input").last == 8.0

"""Throughput suite + perf-regression gate tests (docs/benchmarks.md).

The suite runs at tiny ``scale`` here: the schema, determinism and gate
logic under test are scale-invariant; only the speedup-floor test needs
a budget large enough for stable timing.
"""

import copy
import json

import pytest

from repro.cli import main
from repro.runtime.throughput import (
    BASELINE_SCHEMA,
    THROUGHPUT_SCHEMA,
    THROUGHPUT_VERSION,
    canonical_throughput_payload,
    compare_to_baseline,
    make_baseline,
    run_throughput_suite,
)

ENTRY_FIELDS = {"name", "unit", "items", "wall_s", "per_sec", "digest"}


@pytest.fixture(scope="module")
def report():
    return run_throughput_suite(seed=0, jobs=1, scale=0.02)


class TestSuiteReport:
    def test_schema_header(self, report):
        assert report["schema"] == THROUGHPUT_SCHEMA
        assert report["v"] == THROUGHPUT_VERSION
        assert report["seed"] == 0 and report["jobs"] == 1

    def test_entries_cover_every_hot_path(self, report):
        names = {e["name"] for e in report["entries"]}
        assert {
            "calibration.numpy", "sim.events",
            "sim.cells.batched", "sim.cells.scalar",
            "mc.lifetime.vectorized", "mc.lifetime.scalar",
            "mc.is.batched", "mc.is.scalar",
        } <= names
        assert sum(n.startswith("solver.") for n in names) == 6
        for e in report["entries"]:
            assert set(e) == ENTRY_FIELDS
            assert e["items"] > 0 and e["per_sec"] > 0.0

    def test_metrics_present(self, report):
        m = report["metrics"]
        for key in (
            "calibration.ops_per_sec", "sim.events_per_sec",
            "sim.cells_per_sec", "sim.cells.speedup_vs_scalar",
            "mc.lifetime.trials_per_sec", "mc.lifetime.speedup_vs_scalar",
            "mc.is.cycles_per_sec", "mc.is.speedup_vs_scalar",
        ):
            assert m[key] > 0.0
        assert sum(k.startswith("solver.") for k in m) == 6

    def test_cell_dispatch_digests_agree(self, report):
        # The cell entry runs the identical workload under both dispatch
        # modes; equal digests mean equal delivery counts, summed
        # delivery timestamps, final clock and event totals -- the
        # equivalence oracle rides inside the benchmark itself.
        digests = {e["name"]: e["digest"] for e in report["entries"]}
        assert digests["sim.cells.batched"] == digests["sim.cells.scalar"]

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            run_throughput_suite(scale=0.0)


class TestCanonicalPayload:
    def test_projection_drops_measured_fields(self, report):
        payload = canonical_throughput_payload(report)
        assert "jobs" not in payload and "metrics" not in payload
        for e in payload["entries"]:
            assert set(e) == {"name", "unit", "items", "digest"}

    def test_identical_across_jobs(self, report):
        other = run_throughput_suite(seed=0, jobs=2, scale=0.02)
        assert json.dumps(
            canonical_throughput_payload(report), sort_keys=True
        ) == json.dumps(canonical_throughput_payload(other), sort_keys=True)

    def test_seed_changes_digests(self, report):
        other = run_throughput_suite(seed=1, jobs=1, scale=0.02)
        mine = {e["name"]: e["digest"] for e in report["entries"]}
        theirs = {e["name"]: e["digest"] for e in other["entries"]}
        assert mine["mc.lifetime.vectorized"] != theirs["mc.lifetime.vectorized"]
        assert mine["mc.is.batched"] != theirs["mc.is.batched"]


class TestGate:
    def test_baseline_document(self, report):
        baseline = make_baseline(report)
        assert baseline["schema"] == BASELINE_SCHEMA
        assert baseline["threshold"] == 0.15
        specs = baseline["metrics"]
        assert "calibration.ops_per_sec" not in specs  # the anchor is ungated
        assert specs["sim.events_per_sec"] == {
            "value": report["metrics"]["sim.events_per_sec"],
            "mode": "higher", "normalize": True,
        }
        assert specs["sim.cells_per_sec"] == {
            "value": report["metrics"]["sim.cells_per_sec"],
            "mode": "higher", "normalize": True,
        }
        assert specs["sim.cells.speedup_vs_scalar"]["normalize"] is False
        assert specs["mc.is.speedup_vs_scalar"]["normalize"] is False
        for name, spec in specs.items():
            if name.startswith("solver."):
                assert spec["mode"] == "lower"

    def test_self_comparison_passes(self, report):
        assert compare_to_baseline(report, make_baseline(report)) == []

    def test_slowed_run_fails(self, report):
        baseline = make_baseline(report)
        slowed = copy.deepcopy(report)
        for name in list(slowed["metrics"]):
            if name == "calibration.ops_per_sec":
                continue
            if name.endswith(".wall_s"):
                slowed["metrics"][name] *= 2.0
            else:
                slowed["metrics"][name] *= 0.5
        problems = compare_to_baseline(slowed, baseline)
        assert len(problems) == len(baseline["metrics"])
        assert any("mc.is.cycles_per_sec" in p for p in problems)

    def test_small_jitter_tolerated(self, report):
        baseline = make_baseline(report)
        noisy = copy.deepcopy(report)
        for name in noisy["metrics"]:
            if not name.endswith(".wall_s"):
                noisy["metrics"][name] *= 0.95
        assert compare_to_baseline(noisy, baseline) == []

    def test_calibration_shift_cancels_for_normalized_metrics(self, report):
        # A machine uniformly 2x slower: normalized metrics must not trip.
        baseline = make_baseline(report)
        slower = copy.deepcopy(report)
        for name in slower["metrics"]:
            if name.endswith(".wall_s"):
                slower["metrics"][name] *= 2.0
            elif name.endswith("_per_sec"):
                slower["metrics"][name] *= 0.5
        assert compare_to_baseline(slower, baseline) == []

    def test_missing_metric_is_a_regression(self, report):
        baseline = make_baseline(report)
        stripped = copy.deepcopy(report)
        del stripped["metrics"]["sim.events_per_sec"]
        problems = compare_to_baseline(stripped, baseline)
        assert any("missing" in p for p in problems)

    def test_threshold_override(self, report):
        baseline = make_baseline(report)
        noisy = copy.deepcopy(report)
        noisy["metrics"]["mc.is.speedup_vs_scalar"] *= 0.8
        assert compare_to_baseline(noisy, baseline)  # 20% > the default 15%
        assert compare_to_baseline(noisy, baseline, threshold=0.3) == []

    def test_wrong_schema_rejected(self, report):
        with pytest.raises(ValueError, match="schema"):
            compare_to_baseline(report, {"schema": "repro-bench"})


class TestCli:
    def _run(self, tmp_path, *extra):
        out = tmp_path / "BENCH_throughput.json"
        rc = main([
            "bench", "--suite", "throughput", "--scale", "0.02",
            "--json-out", str(out),
            "--baseline", str(tmp_path / "missing-baseline.json"),
            *extra,
        ])
        return rc, out

    def test_writes_schema_versioned_artifact(self, tmp_path, capsys):
        rc, out = self._run(tmp_path)
        assert rc == 0  # missing baseline file skips the gate
        report = json.loads(out.read_text())
        assert report["schema"] == THROUGHPUT_SCHEMA
        assert report["v"] == THROUGHPUT_VERSION
        assert "gate skipped" in capsys.readouterr().err

    def test_artifact_canonical_payload_identical_across_jobs(self, tmp_path):
        payloads = []
        for jobs in ("1", "4"):
            _, out = self._run(tmp_path, "--jobs", jobs)
            payloads.append(
                json.dumps(
                    canonical_throughput_payload(json.loads(out.read_text())),
                    sort_keys=True,
                ).encode()
            )
        assert payloads[0] == payloads[1]

    def test_update_baseline_then_gate_passes(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        rc = main([
            "bench", "--suite", "throughput", "--scale", "0.02",
            "--json-out", "", "--baseline", str(baseline), "--update-baseline",
        ])
        assert rc == 0
        assert json.loads(baseline.read_text())["schema"] == BASELINE_SCHEMA
        # a --threshold wide enough to absorb run-to-run jitter: the gate
        # logic is what is under test, not the machine's noise floor
        rc = main([
            "bench", "--suite", "throughput", "--scale", "0.02",
            "--json-out", "", "--baseline", str(baseline), "--threshold", "20",
        ])
        assert rc == 0

    def test_gate_fails_on_inflated_baseline(self, tmp_path, capsys):
        report = run_throughput_suite(seed=0, jobs=1, scale=0.02)
        baseline = make_baseline(report)
        for spec in baseline["metrics"].values():
            spec["value"] *= 100.0 if spec["mode"] == "higher" else 0.01
        path = tmp_path / "inflated.json"
        path.write_text(json.dumps(baseline))
        rc = main([
            "bench", "--suite", "throughput", "--scale", "0.02",
            "--json-out", "", "--baseline", str(path),
        ])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().err


class TestSpeedupFloor:
    def test_vectorized_kernels_beat_scalar_by_3x(self):
        # The PR's headline acceptance: >= 3x over the scalar reference
        # on the committed workload shapes (full scale runs 10-30x).
        m = run_throughput_suite(seed=0, jobs=1, scale=0.3)["metrics"]
        assert m["sim.cells.speedup_vs_scalar"] >= 3
        assert m["mc.lifetime.speedup_vs_scalar"] >= 3
        assert m["mc.is.speedup_vs_scalar"] >= 3

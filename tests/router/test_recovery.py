"""Fault-map and coverage-planner tests (Section 3.2 case logic)."""


from repro.router.components import ComponentKind
from repro.router.linecard import Linecard
from repro.router.packets import Packet, Protocol
from repro.router.recovery import (
    CoveragePlanner,
    DropReason,
    EgressMode,
    FaultMap,
)


def make_lcs(n=6, protocols=(Protocol.ETHERNET,)):
    return {
        i: Linecard(i, protocols[i % len(protocols)], dra=True) for i in range(n)
    }


def pkt(src=0, dst=1):
    return Packet(src, dst, 0x0A000001, 500, Protocol.ETHERNET, 0.0)


class TestFaultMap:
    def test_mark_and_query(self):
        fm = FaultMap()
        fm.mark_failed(2, ComponentKind.SRU)
        assert fm.is_failed(2, ComponentKind.SRU)
        assert fm.failed_at(2) == {ComponentKind.SRU}
        assert fm.any_failed(2)
        assert not fm.any_failed(3)

    def test_repair_clears(self):
        fm = FaultMap()
        fm.mark_failed(2, ComponentKind.SRU)
        fm.mark_repaired(2, ComponentKind.SRU)
        assert not fm.any_failed(2)

    def test_repair_of_healthy_is_noop(self):
        fm = FaultMap()
        fm.mark_repaired(1, ComponentKind.LFE)
        assert not fm.any_failed(1)


class TestPlannerHealthy:
    def test_no_faults_plain_fabric(self):
        planner = CoveragePlanner(make_lcs(), FaultMap())
        plan = planner.plan(pkt())
        assert plan.drop is None
        assert plan.egress_mode is EgressMode.FABRIC
        assert not plan.uses_eib


class TestPlannerIngress:
    def test_pdlu_fault_covered(self):
        fm = FaultMap()
        fm.mark_failed(0, ComponentKind.PDLU)
        plan = CoveragePlanner(make_lcs(), fm).plan(pkt(src=0))
        assert plan.ingress_fault is ComponentKind.PDLU
        assert plan.uses_eib

    def test_sru_fault_covered(self):
        fm = FaultMap()
        fm.mark_failed(0, ComponentKind.SRU)
        plan = CoveragePlanner(make_lcs(), fm).plan(pkt(src=0))
        assert plan.ingress_fault is ComponentKind.SRU

    def test_lone_lfe_fault_uses_remote_lookup(self):
        fm = FaultMap()
        fm.mark_failed(0, ComponentKind.LFE)
        plan = CoveragePlanner(make_lcs(), fm).plan(pkt(src=0))
        assert plan.remote_lookup
        assert plan.ingress_fault is None

    def test_sru_plus_lfe_covered_by_one_stream(self):
        """SRU coverage subsumes the lookup; no separate REQ_L needed."""
        fm = FaultMap()
        fm.mark_failed(0, ComponentKind.SRU)
        fm.mark_failed(0, ComponentKind.LFE)
        plan = CoveragePlanner(make_lcs(), fm).plan(pkt(src=0))
        assert plan.ingress_fault is ComponentKind.SRU
        assert not plan.remote_lookup

    def test_piu_fault_drops(self):
        fm = FaultMap()
        fm.mark_failed(0, ComponentKind.PIU)
        plan = CoveragePlanner(make_lcs(), fm).plan(pkt(src=0))
        assert plan.drop == DropReason.PIU_IN


class TestPlannerEgress:
    def test_dst_piu_fault_drops(self):
        fm = FaultMap()
        fm.mark_failed(1, ComponentKind.PIU)
        plan = CoveragePlanner(make_lcs(), fm).plan(pkt(dst=1))
        assert plan.drop == DropReason.PIU_OUT

    def test_dst_sru_fault_goes_direct(self):
        fm = FaultMap()
        fm.mark_failed(1, ComponentKind.SRU)
        plan = CoveragePlanner(make_lcs(), fm).plan(pkt(dst=1))
        assert plan.egress_mode is EgressMode.EIB_DIRECT
        assert plan.egress_fault is ComponentKind.SRU

    def test_dst_pdlu_same_protocol_goes_direct(self):
        fm = FaultMap()
        fm.mark_failed(1, ComponentKind.PDLU)
        plan = CoveragePlanner(make_lcs(), fm).plan(pkt(dst=1))
        assert plan.egress_mode is EgressMode.EIB_DIRECT
        assert plan.egress_fault is ComponentKind.PDLU

    def test_dst_pdlu_different_protocol_via_inter(self):
        lcs = make_lcs(protocols=(Protocol.ETHERNET, Protocol.SONET_POS))
        fm = FaultMap()
        fm.mark_failed(1, ComponentKind.PDLU)  # LC1 is SONET; LC0 Ethernet
        plan = CoveragePlanner(lcs, fm).plan(pkt(src=0, dst=1))
        assert plan.egress_mode is EgressMode.EIB_VIA_INTER

    def test_dst_lfe_fault_is_harmless(self):
        fm = FaultMap()
        fm.mark_failed(1, ComponentKind.LFE)
        plan = CoveragePlanner(make_lcs(), fm).plan(pkt(dst=1))
        assert plan.egress_mode is EgressMode.FABRIC
        assert plan.drop is None


class TestPlannerCompound:
    def test_dst_sru_and_pdlu_drops(self):
        fm = FaultMap()
        fm.mark_failed(1, ComponentKind.SRU)
        fm.mark_failed(1, ComponentKind.PDLU)
        plan = CoveragePlanner(make_lcs(), fm).plan(pkt(dst=1))
        assert plan.drop == DropReason.COMPOUND_FAULT

    def test_ingress_coverage_plus_eib_egress_drops(self):
        fm = FaultMap()
        fm.mark_failed(0, ComponentKind.SRU)
        fm.mark_failed(1, ComponentKind.SRU)
        plan = CoveragePlanner(make_lcs(), fm).plan(pkt(src=0, dst=1))
        assert plan.drop == DropReason.COMPOUND_FAULT

    def test_src_pdlu_fault_with_dst_pdlu_fault_same_protocol(self):
        """Source cannot take the direct alternative with its own PDLU
        down; the via-inter route applies but would chain -- drop."""
        fm = FaultMap()
        fm.mark_failed(0, ComponentKind.PDLU)
        fm.mark_failed(1, ComponentKind.PDLU)
        plan = CoveragePlanner(make_lcs(), fm).plan(pkt(src=0, dst=1))
        assert plan.drop == DropReason.COMPOUND_FAULT


class TestCandidates:
    def test_ingress_candidates_exclude_endpoints(self):
        lcs = make_lcs()
        planner = CoveragePlanner(lcs, FaultMap())
        cands = planner.ingress_candidates(pkt(src=0, dst=1), ComponentKind.SRU, 1e9)
        assert 0 not in cands and 1 not in cands
        assert set(cands) == {2, 3, 4, 5}

    def test_ingress_candidates_respect_protocol(self):
        lcs = make_lcs(protocols=(Protocol.ETHERNET, Protocol.SONET_POS))
        planner = CoveragePlanner(lcs, FaultMap())
        cands = planner.ingress_candidates(pkt(src=0, dst=1), ComponentKind.PDLU, 1e9)
        # Only even LCs run Ethernet, and 0 (src) is excluded.
        assert set(cands) == {2, 4}

    def test_egress_inter_candidates_match_dst_protocol(self):
        lcs = make_lcs(protocols=(Protocol.ETHERNET, Protocol.SONET_POS))
        planner = CoveragePlanner(lcs, FaultMap())
        cands = planner.egress_inter_candidates(pkt(src=0, dst=1), 1e9)
        # Must run SONET (dst protocol): LCs 3, 5 (1 is the dst).
        assert set(cands) == {3, 5}

    def test_unhealthy_candidates_filtered(self):
        lcs = make_lcs()
        lcs[2].sru.fail()
        lcs[3].bus_controller.fail()
        planner = CoveragePlanner(lcs, FaultMap())
        cands = planner.ingress_candidates(pkt(src=0, dst=1), ComponentKind.SRU, 1e9)
        assert set(cands) == {4, 5}

    def test_candidates_sorted_regardless_of_dict_order(self):
        # DRA103 spirit: candidate ranking must not depend on the
        # construction order of the linecard dict.
        reversed_lcs = dict(sorted(make_lcs().items(), reverse=True))
        planner = CoveragePlanner(reversed_lcs, FaultMap())
        ing = planner.ingress_candidates(pkt(src=0, dst=1), ComponentKind.SRU, 1e9)
        egr = planner.egress_inter_candidates(pkt(src=0, dst=1), 1e9)
        assert ing == sorted(ing) == [2, 3, 4, 5]
        assert egr == sorted(egr) == [2, 3, 4, 5]


class TestFaultMapHygiene:
    def test_mark_repaired_prunes_empty_entries(self):
        fm = FaultMap()
        fm.mark_failed(3, ComponentKind.SRU)
        fm.mark_repaired(3, ComponentKind.SRU)
        # Regression: the empty set() used to linger, making any_failed
        # scans and compactness checks see ghost entries.
        assert fm.active_faults() == {}
        assert fm.is_compact()
        assert not fm.any_failed(3)

    def test_partial_repair_keeps_entry(self):
        fm = FaultMap()
        fm.mark_failed(3, ComponentKind.SRU)
        fm.mark_failed(3, ComponentKind.LFE)
        fm.mark_repaired(3, ComponentKind.SRU)
        assert fm.active_faults() == {3: {ComponentKind.LFE}}
        assert fm.is_compact()

"""Planner v2 coverage policies: static bit-identity, adaptive scoring,
replanning, fair degradation, and the reserve-race observability."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry, collecting
from repro.obs import trace as _trace
from repro.router.bus import EIB
from repro.router.components import ComponentKind
from repro.router.linecard import Linecard
from repro.router.packets import Packet, Protocol
from repro.router.planner2 import (
    POLICY_NAMES,
    AdaptivePolicy,
    StaticPolicy,
    make_policy,
)
from repro.router.protocol import EIBProtocol, StreamState
from repro.router.router import Router, RouterConfig, RouterMode
from repro.router.routing import RouteProcessor
from repro.router.stats import RouterStats
from repro.sim import Engine


def make_world(n=4, protocols=(Protocol.ETHERNET,), policy=None, data_rate_bps=20e9):
    eng = Engine()
    lcs = {i: Linecard(i, protocols[i % len(protocols)], dra=True) for i in range(n)}
    rp = RouteProcessor()
    rp.default_full_mesh(n)
    for lc in lcs.values():
        lc.table = rp.distribute()
    eib = EIB(eng, list(lcs), np.random.default_rng(0), data_rate_bps=data_rate_bps)
    stats = RouterStats()
    proto = EIBProtocol(
        eng, eib, lcs, stats, np.random.default_rng(1), policy=policy
    )
    return eng, lcs, eib, proto, stats


def make_router(policy="adaptive", n=6, seed=11):
    return Router(
        RouterConfig(
            n_linecards=n, mode=RouterMode.DRA, seed=seed, coverage_policy=policy
        )
    )


def probe(src, dst, created_at=0.0):
    return Packet(src, dst, 0x0A000001 + (dst << 16), 500, Protocol.ETHERNET, created_at)


class TestFactoryAndConfig:
    def test_registered_names(self):
        assert POLICY_NAMES == ("static", "adaptive")
        assert isinstance(make_policy("static"), StaticPolicy)
        assert isinstance(make_policy("adaptive"), AdaptivePolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown coverage policy"):
            make_policy("greedy")
        with pytest.raises(ValueError, match="unknown coverage policy"):
            RouterConfig(coverage_policy="greedy")

    def test_default_is_static(self):
        _eng, _lcs, _eib, proto, _stats = make_world()
        assert isinstance(proto.policy, StaticPolicy)
        assert not proto.policy.replans
        assert not proto.policy.degrades

    def test_adaptive_rejects_bad_decay(self):
        with pytest.raises(ValueError, match="health_decay_s"):
            AdaptivePolicy(health_decay_s=0.0)


class TestStaticBitIdentity:
    def test_reply_delay_matches_paper_formula(self):
        # The StaticPolicy delay must be the exact pre-policy inline
        # formula: same rank arithmetic, same single uniform draw.
        policy = StaticPolicy()
        for me, requester, n in ((1, 0, 4), (0, 3, 4), (5, 2, 6)):
            r1 = np.random.default_rng(9)
            r2 = np.random.default_rng(9)
            got = policy.reply_delay(me, requester, n, 1e9, r1)
            rank = (me - requester) % n
            want = 0.5e-6 + 2e-6 * rank + float(r2.uniform(0.0, 0.4e-6))
            assert got == want

    def test_explicit_static_router_matches_default(self):
        # policy="static" must be indistinguishable from the pre-policy
        # default: identical deliveries under identical fault schedules.
        def run(policy_kwargs):
            router = Router(
                RouterConfig(
                    n_linecards=6, mode=RouterMode.DRA, seed=5, **policy_kwargs
                )
            )
            router.inject_fault(0, ComponentKind.PDLU)
            for k in range(40):
                t = (k + 1) * 2e-6
                pkt = probe(0, 3 + k % 3, t)
                router.engine.schedule(
                    t, lambda p=pkt: router.inject(p), label="test:inject"
                )
            router.run(until=5e-3)
            return (
                router.stats.delivered,
                dict(router.stats.drops),
                router.stats.latency.mean,
            )

        assert run({}) == run({"coverage_policy": "static"})


class TestAdaptiveScoring:
    def test_flap_history_decays(self):
        policy = AdaptivePolicy(health_decay_s=1e-3)
        policy.observe_fault(2, 0.0)
        policy.observe_fault(2, 0.0)
        policy.observe_fault(2, 0.0)
        assert policy._decayed(2, 0.0) == pytest.approx(3.0)
        assert policy._decayed(2, 1e-3) == pytest.approx(3.0 * np.exp(-1.0))
        assert policy._decayed(2, 10e-3) < 0.001

    def test_repair_keeps_history(self):
        # A flapping card that repairs fast must still look restless.
        policy = AdaptivePolicy()
        policy.observe_fault(1, 0.0)
        policy.observe_repair(1, 1e-5)
        assert policy._decayed(1, 1e-5) > 0.9

    def test_loaded_candidate_scores_lower(self):
        eng, lcs, eib, proto, stats = make_world(policy=AdaptivePolicy())
        policy = proto.policy
        baseline = policy.score(2, 1e9)
        lcs[2].reserve(8e9)  # near-full card
        assert policy.score(2, 1e9) < baseline

    def test_scores_order_not_veto(self):
        # Every candidate flapping and loaded: delays still finite, so a
        # solicitation cannot deadlock -- the least-bad candidate wins.
        eng, lcs, eib, proto, stats = make_world(policy=AdaptivePolicy())
        for i in (1, 2, 3):
            for _ in range(50):
                proto.policy.observe_fault(i, 0.0)
            lcs[i].reserve(9e9)
        results = []
        proto.ensure_stream(
            ("ingress", 0, ComponentKind.SRU), 0, 0.5e9, results.append,
            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET,
        )
        eng.run(until=0.01)
        assert results[0] is not None
        assert results[0].state is StreamState.ACTIVE


class TestSpread:
    def test_second_stream_avoids_busy_coverer(self):
        # With one coverage stream active, the spread term (0.2 weight,
        # 0.8 us of delay span) dominates the 0.2 us jitter: the second
        # solicitation must elect a different LC_inter.
        eng, lcs, eib, proto, stats = make_world(n=6, policy=AdaptivePolicy())
        first, second = [], []
        proto.ensure_stream(
            ("ingress", 0, ComponentKind.SRU), 0, 1e9, first.append,
            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET,
        )
        eng.run(until=1e-3)
        proto.ensure_stream(
            ("ingress", 1, ComponentKind.SRU), 1, 1e9, second.append,
            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET,
        )
        eng.run(until=2e-3)
        assert first[0].state is StreamState.ACTIVE
        assert second[0].state is StreamState.ACTIVE
        assert second[0].covering_lc != first[0].covering_lc


class TestReplanning:
    def _covered_router(self, policy="adaptive"):
        router = make_router(policy=policy)
        router.inject_fault(0, ComponentKind.PDLU)
        router.engine.schedule(
            1e-6, lambda: router.inject(probe(0, 3, 1e-6)), label="test:inject"
        )
        router.run(until=1e-3)
        stream = router.protocol.stream(("ingress", 0, ComponentKind.PDLU))
        assert stream is not None and stream.state is StreamState.ACTIVE
        return router, stream

    def test_adaptive_replans_on_covering_lc_fault(self):
        registry = MetricsRegistry()
        with collecting(registry):
            router, stream = self._covered_router()
            dead = stream.covering_lc
            router.inject_fault(dead, ComponentKind.SRU)
            router.run(until=3e-3)
        replanned = router.protocol.stream(("ingress", 0, ComponentKind.PDLU))
        assert replanned is not None
        assert replanned.state is StreamState.ACTIVE
        assert replanned.covering_lc != dead
        assert registry.counter("coverage.replans").value >= 1

    def test_static_keeps_paper_behavior(self):
        # The static policy must NOT replan: the stream stays pointed at
        # the dead coverer until the covered fault itself is repaired.
        router, stream = self._covered_router(policy="static")
        dead = stream.covering_lc
        router.inject_fault(dead, ComponentKind.SRU)
        router.run(until=3e-3)
        after = router.protocol.stream(("ingress", 0, ComponentKind.PDLU))
        assert after is stream
        assert after.state is StreamState.ACTIVE
        assert after.covering_lc == dead

    def test_replan_races_repair_flt_c(self):
        # Covering LC faults, then repairs before/while the backoff
        # retry is pending: the repaired-news prompt retry and the
        # armed backoff must not double-fire or corrupt stream state.
        router, stream = self._covered_router()
        dead = stream.covering_lc
        router.inject_fault(dead, ComponentKind.SRU)
        router.engine.schedule(
            router.engine.now + 20e-6,
            lambda: router.repair_fault(dead, ComponentKind.SRU),
            label="test:repair",
        )
        router.run(until=5e-3)
        after = router.protocol.stream(("ingress", 0, ComponentKind.PDLU))
        assert after is not None
        assert after.state is StreamState.ACTIVE
        snap = router.protocol.snapshot_state()
        assert snap["soliciting_without_timeout"] == []
        assert snap["stale_timeouts"] == []

    def test_backoff_attempts_are_bounded(self):
        # With every candidate permanently unable to cover, replanning
        # must give up after replan_max_attempts rather than re-solicit
        # forever.
        eng, lcs, eib, proto, stats = make_world(policy=AdaptivePolicy())
        for i in (1, 2, 3):
            lcs[i].sru.fail()
        results = []
        proto.ensure_stream(
            ("ingress", 0, ComponentKind.SRU), 0, 1e9, results.append,
            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET,
        )
        eng.run(until=1.0)  # far past any backoff horizon
        assert results == [None]
        max_solicits = proto.policy.replan_max_attempts + 1
        assert stats.streams_failed <= max_solicits


class TestFairDegradation:
    def _establish(self, proto, eng, init_lc, rate):
        results = []
        proto.ensure_stream(
            ("ingress", init_lc, ComponentKind.SRU), init_lc, rate, results.append,
            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET,
        )
        eng.run(until=eng.now + 1e-3)
        assert results[0] is not None and results[0].state is StreamState.ACTIVE
        return results[0]

    def test_proportional_shed_over_capacity(self):
        registry = MetricsRegistry()
        tracer = _trace.Tracer(path=None)
        prev = _trace.TRACER
        _trace.set_tracer(tracer)
        try:
            with collecting(registry):
                eng, lcs, eib, proto, stats = make_world(
                    n=6, policy=AdaptivePolicy(), data_rate_bps=1e9
                )
                a = self._establish(proto, eng, 0, 0.8e9)
                b = self._establish(proto, eng, 1, 0.6e9)
        finally:
            _trace.set_tracer(prev)
        factor = 1e9 / 1.4e9
        assert a.rate_bps == pytest.approx(0.8e9 * factor)
        assert b.rate_bps == pytest.approx(0.6e9 * factor)
        # Bookkeeping stays mutually consistent: LP rates match stream
        # rates and the coverers' reservations were shrunk by the shed.
        snap = proto.snapshot_state()
        assert sum(snap["lp_rates"].values()) == pytest.approx(1e9)
        assert snap["active_rate_by_sender"] == pytest.approx(snap["lp_rates"])
        assert lcs[a.covering_lc].committed_bps == pytest.approx(a.rate_bps)
        assert registry.counter("coverage.degradations").value == 1
        events = [ev for ev in tracer.events if ev.kind == "coverage.degraded"]
        assert len(events) == 1
        assert events[0].data["factor"] == pytest.approx(factor)
        assert events[0].data["reason"] == "eib_overload"

    def test_exactly_at_capacity_no_shed(self):
        registry = MetricsRegistry()
        with collecting(registry):
            eng, lcs, eib, proto, stats = make_world(
                n=6, policy=AdaptivePolicy(), data_rate_bps=1e9
            )
            a = self._establish(proto, eng, 0, 0.6e9)
            b = self._establish(proto, eng, 1, 0.4e9)
        assert a.rate_bps == 0.6e9
        assert b.rate_bps == 0.4e9
        assert registry.counter("coverage.degradations").value == 0

    def test_static_policy_never_degrades(self):
        eng, lcs, eib, proto, stats = make_world(n=6, data_rate_bps=1e9)
        a = self._establish(proto, eng, 0, 0.8e9)
        b = self._establish(proto, eng, 1, 0.6e9)
        assert a.rate_bps == 0.8e9  # paper behavior: no shedding
        assert b.rate_bps == 0.6e9


class TestReserveRace:
    def test_race_emits_event_and_counter(self):
        registry = MetricsRegistry()
        tracer = _trace.Tracer(path=None)
        prev = _trace.TRACER
        _trace.set_tracer(tracer)
        try:
            with collecting(registry):
                eng, lcs, eib, proto, stats = make_world()
                results = []
                proto.ensure_stream(
                    ("ingress", 0, ComponentKind.SRU), 0, 2e9, results.append,
                    fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET,
                )
                # Let the REQ_D reach the candidates (their can_cover
                # passed), then burn every candidate's headroom before
                # the winning REP_D resolves the stream.
                eng.run(until=1.5e-6)
                for i in (1, 2, 3):
                    assert lcs[i].reserve(9e9)
                eng.run(until=0.01)
        finally:
            _trace.set_tracer(prev)
        assert results == [None]
        assert registry.counter("protocol.reserve_races").value == 1
        events = [ev for ev in tracer.events if ev.kind == "protocol.reserve_race"]
        assert len(events) == 1
        assert events[0].data["init_lc"] == 0
        assert events[0].data["responder"] in (1, 2, 3)

"""Linecard unit-model tests."""

import pytest

from repro.router.components import (
    LFE,
    PDLU,
    PIU,
    SRU,
    BusController,
    ComponentKind,
    ServiceModel,
)
from repro.router.packets import Protocol


class TestServiceModel:
    def test_delay_formula(self):
        sm = ServiceModel(overhead_s=1e-6, rate_bps=8e9)
        assert sm.delay(1000) == pytest.approx(1e-6 + 1e-6)

    def test_delay_monotone_in_size(self):
        sm = ServiceModel()
        assert sm.delay(1500) > sm.delay(64)


class TestComponentKind:
    def test_pdlu_is_protocol_dependent(self):
        assert ComponentKind.PDLU.is_protocol_dependent
        assert not ComponentKind.SRU.is_protocol_dependent

    def test_pi_unit_grouping(self):
        assert ComponentKind.SRU.is_pi_unit
        assert ComponentKind.LFE.is_pi_unit
        assert not ComponentKind.PDLU.is_pi_unit
        assert not ComponentKind.PIU.is_pi_unit


class TestHealthLifecycle:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PIU(0),
            lambda: PDLU(0, Protocol.ETHERNET),
            lambda: SRU(0),
            lambda: LFE(0),
            lambda: BusController(0),
        ],
    )
    def test_fail_and_repair(self, factory):
        unit = factory()
        assert unit.healthy
        unit.fail()
        assert not unit.healthy
        unit.repair()
        assert unit.healthy

    def test_processing_while_failed_raises(self):
        sru = SRU(3)
        sru.fail()
        with pytest.raises(RuntimeError, match="while failed"):
            sru.process_delay(100)

    def test_processed_counter(self):
        sru = SRU(0)
        sru.process_delay(100)
        sru.process_delay(100)
        assert sru.processed == 2

    def test_name(self):
        assert SRU(3).name == "SRU@LC3"
        assert BusController(1).name == "BC@LC1"

    def test_pdlu_remembers_protocol(self):
        assert PDLU(0, Protocol.ATM).protocol is Protocol.ATM

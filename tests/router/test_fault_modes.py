"""Extended fault taxonomy: transient, intermittent, fail-slow, control."""

import numpy as np
import pytest

from repro.router import ComponentKind, FaultInjector, Router, RouterConfig
from repro.router.components import Component, ServiceModel
from repro.router.faults import FaultModes
from repro.router.router import RouterMode


def make_router(seed=1, n=4):
    return Router(RouterConfig(n_linecards=n, mode=RouterMode.DRA, seed=seed))


def make_injector(router, modes, seed=0, accel=1e7, repair_rate=None):
    return FaultInjector.accelerated(
        router,
        np.random.default_rng(seed),
        accel=accel,
        repair_rate=repair_rate,
        modes=modes,
    )


class TestFaultModesConfig:
    def test_rejects_zero_weight_sum(self):
        with pytest.raises(ValueError):
            FaultModes(crash_weight=0.0)

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            FaultModes(transient_weight=-1.0)

    def test_rejects_certain_flap_continue(self):
        with pytest.raises(ValueError):
            FaultModes(flap_continue_prob=1.0)

    def test_rejects_ctl_prob_overflow(self):
        with pytest.raises(ValueError):
            FaultModes(ctl_loss_prob=0.7, ctl_corrupt_prob=0.5)


class TestFailSlowComponent:
    def test_degrade_scales_service_delay(self):
        c = Component(ComponentKind.SRU, 0, ServiceModel(rate_bps=1e9))
        base = c.process_delay(1000)
        c.degrade(4.0)
        assert c.degraded
        assert c.process_delay(1000) == pytest.approx(4.0 * base)
        c.restore_speed()
        assert not c.degraded
        assert c.process_delay(1000) == pytest.approx(base)

    def test_degrade_scales_queueing_sojourn(self):
        c = Component(ComponentKind.SRU, 0, ServiceModel(rate_bps=1e9))
        base = c.serve(1000, now=0.0)
        c2 = Component(ComponentKind.SRU, 0, ServiceModel(rate_bps=1e9))
        c2.degrade(3.0)
        assert c2.serve(1000, now=0.0) == pytest.approx(3.0 * base)

    def test_degrade_rejects_speedup(self):
        c = Component(ComponentKind.SRU, 0, ServiceModel(rate_bps=1e9))
        with pytest.raises(ValueError):
            c.degrade(0.5)

    def test_repair_resets_slow_factor(self):
        c = Component(ComponentKind.SRU, 0, ServiceModel(rate_bps=1e9))
        c.degrade(4.0)
        c.fail()
        c.repair()
        assert not c.degraded


class TestTransient:
    def test_transient_faults_auto_clear(self):
        r = make_router()
        modes = FaultModes(crash_weight=0.0, transient_weight=1.0)
        inj = make_injector(r, modes)
        inj.start()
        r.run(until=0.02)
        inj.stop()
        r.run(until=0.03)
        fails = [e for e in inj.log if e.action == "fail"]
        clears = [e for e in inj.log if e.action == "clear"]
        assert fails and all(e.mode == "transient" for e in fails)
        assert len(clears) == len(fails)  # every transient self-healed
        for lc in r.linecards.values():
            assert lc.fully_healthy


class TestIntermittent:
    def test_flapping_produces_fail_clear_cycles(self):
        r = make_router(seed=2)
        modes = FaultModes(
            crash_weight=0.0, intermittent_weight=1.0, flap_continue_prob=0.7
        )
        inj = make_injector(r, modes, seed=3)
        inj.start()
        r.run(until=0.02)
        inj.stop()
        r.run(until=0.03)
        fails = [e for e in inj.log if e.action == "fail"]
        clears = [e for e in inj.log if e.action == "clear"]
        assert len(fails) == len(clears)
        # At least one component flapped more than once.
        from collections import Counter

        per_unit = Counter((e.lc_id, e.kind) for e in fails)
        assert max(per_unit.values()) >= 2
        for lc in r.linecards.values():
            assert lc.fully_healthy


class TestFailSlowInjection:
    def test_degrade_restore_cycle(self):
        r = make_router(seed=4)
        modes = FaultModes(crash_weight=0.0, fail_slow_weight=1.0, slow_factor=8.0)
        inj = make_injector(r, modes, seed=5)
        inj.start()
        r.run(until=0.02)
        inj.stop()
        r.run(until=0.03)
        degrades = [e for e in inj.log if e.action == "degrade"]
        restores = [e for e in inj.log if e.action == "restore"]
        assert degrades and len(restores) == len(degrades)
        # Degraded units never enter the fault map: they are slow, not dead.
        assert all(e.action in ("degrade", "restore") for e in inj.log)
        assert not r.faults.active_faults()
        for lc in r.linecards.values():
            for unit in lc.units():
                assert not unit.degraded  # all restored after drain


class TestControlMediumFaults:
    def test_ctl_degrade_restore_cycle(self):
        r = make_router(seed=6)
        modes = FaultModes(ctl_fault_rate=2000.0, ctl_loss_prob=0.5, ctl_corrupt_prob=0.3)
        inj = make_injector(r, modes, seed=7)
        inj.start()
        r.run(until=0.02)
        inj.stop()
        r.run(until=0.03)
        degrades = [e for e in inj.log if e.action == "ctl_degrade"]
        restores = [e for e in inj.log if e.action == "ctl_restore"]
        assert degrades and len(restores) == len(degrades)
        assert r.eib is not None
        assert r.eib.control.loss_prob == 0.0  # medium restored at end
        assert r.eib.control.corrupt_prob == 0.0

    def test_degraded_medium_loses_packets(self):
        from repro.router.bus import ControlChannel
        from repro.router.packets import ControlKind, ControlPacket
        from repro.sim import Engine

        eng = Engine()
        chan = ControlChannel(eng, np.random.default_rng(0))
        got = []
        chan.attach(1, got.append)
        chan.loss_prob = 1.0
        chan.broadcast(ControlPacket(kind=ControlKind.REQ_D, init_lc=0, data_rate=1.0), 0)
        eng.run()
        assert got == [] and chan.lost == 1

    def test_corrupted_packets_discarded(self):
        from repro.router.bus import ControlChannel
        from repro.router.packets import ControlKind, ControlPacket
        from repro.sim import Engine

        eng = Engine()
        chan = ControlChannel(eng, np.random.default_rng(0))
        got = []
        chan.attach(1, got.append)
        chan.corrupt_prob = 1.0
        chan.broadcast(ControlPacket(kind=ControlKind.REQ_D, init_lc=0, data_rate=1.0), 0)
        eng.run()
        assert got == [] and chan.corrupted == 1


class TestInjectorLifecycle:
    def test_repair_rearm_cycles_same_component(self):
        r = make_router(seed=8)
        inj = make_injector(r, None, seed=9, accel=5e7, repair_rate=50000.0)
        inj.start()
        r.run(until=0.05)
        inj.stop()
        r.run(until=0.06)
        from collections import Counter

        fails = Counter((e.lc_id, e.kind) for e in inj.log if e.action == "fail")
        # With fast repair + re-arm, some component fails more than once.
        assert max(fails.values()) >= 2
        repairs = Counter((e.lc_id, e.kind) for e in inj.log if e.action == "repair")
        assert fails == repairs  # drained: every failure was repaired

    def test_already_failed_guard_skips_double_injection(self):
        r = make_router(seed=10)
        inj = make_injector(r, None, seed=11)
        r.inject_fault(0, ComponentKind.SRU)  # failed through another path
        inj._fire_failure(0, ComponentKind.SRU)
        assert inj.log == []  # guard: no double fail, no bogus log entry

    def test_stop_gates_new_failures(self):
        r = make_router(seed=12)
        inj = make_injector(r, None, seed=13, accel=1e7)
        inj.start()
        inj.stop()
        r.run(until=1.0)
        assert inj.log == []


class TestCSMACDAbandonment:
    def test_abandon_after_max_attempts(self):
        from repro.obs import metrics as _metrics
        from repro.router.bus import ControlChannel
        from repro.router.packets import ControlKind, ControlPacket
        from repro.sim import Engine

        eng = Engine()
        chan = ControlChannel(eng, np.random.default_rng(0), max_attempts=1)
        chan.attach(1, lambda p: None)
        reg = _metrics.MetricsRegistry()
        _metrics.set_registry(reg)
        try:
            p1 = ControlPacket(kind=ControlKind.REQ_D, init_lc=0, data_rate=1.0)
            p2 = ControlPacket(kind=ControlKind.REQ_D, init_lc=2, data_rate=1.0)
            chan.broadcast(p1, 0)
            # Past the collision window, still inside p1's transmission:
            # p2 senses carrier and defers rather than colliding.
            eng.run(until=2e-8)
            chan.broadcast(p2, 2)  # defers; retry is attempt 1 >= max_attempts
            eng.run()
        finally:
            _metrics.set_registry(None)
        assert chan.failures == 1
        assert reg.counter("bus.ctl.abandoned").value == 1

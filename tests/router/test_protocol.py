"""EIB protocol-engine tests: handshakes, lookup service, releases."""

import numpy as np
import pytest

from repro.router.bus import EIB
from repro.router.components import ComponentKind
from repro.router.linecard import Linecard
from repro.router.packets import Protocol
from repro.router.protocol import EIBProtocol, StreamState
from repro.router.routing import RouteProcessor
from repro.router.stats import RouterStats
from repro.sim import Engine


def make_world(n=4, protocols=(Protocol.ETHERNET,)):
    eng = Engine()
    lcs = {i: Linecard(i, protocols[i % len(protocols)], dra=True) for i in range(n)}
    rp = RouteProcessor()
    rp.default_full_mesh(n)
    for lc in lcs.values():
        lc.table = rp.distribute()
    eib = EIB(eng, list(lcs), np.random.default_rng(0))
    stats = RouterStats()
    proto = EIBProtocol(eng, eib, lcs, stats, np.random.default_rng(1))
    return eng, lcs, eib, proto, stats


class TestForwardPathSolicitation:
    def test_stream_established_with_a_covering_lc(self):
        eng, lcs, eib, proto, stats = make_world()
        results = []
        proto.ensure_stream(
            ("ingress", 0, ComponentKind.SRU), 0, 1e9, results.append,
            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET,
        )
        eng.run(until=0.01)
        assert len(results) == 1
        stream = results[0]
        assert stream is not None
        assert stream.state is StreamState.ACTIVE
        assert stream.covering_lc in (1, 2, 3)
        assert stats.streams_established == 1

    def test_capacity_reserved_on_winner(self):
        eng, lcs, eib, proto, stats = make_world()
        results = []
        proto.ensure_stream(
            ("ingress", 0, ComponentKind.SRU), 0, 2e9, results.append,
            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET,
        )
        eng.run(until=0.01)
        winner = results[0].covering_lc
        assert lcs[winner].committed_bps == pytest.approx(2e9)

    def test_waiters_coalesce_onto_one_stream(self):
        eng, lcs, eib, proto, stats = make_world()
        results = []
        key = ("ingress", 0, ComponentKind.SRU)
        for _ in range(5):
            proto.ensure_stream(
                key, 0, 1e9, results.append,
                fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET,
            )
        eng.run(until=0.01)
        assert len(results) == 5
        assert stats.streams_established == 1
        assert len({id(s) for s in results}) == 1

    def test_no_candidates_fails(self):
        eng, lcs, eib, proto, stats = make_world()
        for i in (1, 2, 3):
            lcs[i].sru.fail()  # nobody can cover an SRU fault
        results = []
        proto.ensure_stream(
            ("ingress", 0, ComponentKind.SRU), 0, 1e9, results.append,
            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET,
        )
        eng.run(until=0.01)
        assert results == [None]
        assert stats.streams_failed == 1

    def test_protocol_mismatch_fails(self):
        eng, lcs, eib, proto, stats = make_world(
            protocols=(Protocol.ETHERNET, Protocol.SONET_POS, Protocol.ATM, Protocol.FRAME_RELAY)
        )
        results = []
        # Every LC runs a different protocol: no PDLU coverage possible.
        proto.ensure_stream(
            ("ingress", 0, ComponentKind.PDLU), 0, 1e9, results.append,
            fault_kind=ComponentKind.PDLU, protocol=Protocol.ETHERNET,
        )
        eng.run(until=0.01)
        assert results == [None]

    def test_dead_bus_controller_fails_immediately(self):
        eng, lcs, eib, proto, stats = make_world()
        lcs[0].bus_controller.fail()
        results = []
        proto.ensure_stream(
            ("ingress", 0, ComponentKind.SRU), 0, 1e9, results.append,
            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET,
        )
        assert results == [None]  # synchronous rejection

    def test_failed_stream_cooldown_then_retry(self):
        eng, lcs, eib, proto, stats = make_world()
        for i in (1, 2, 3):
            lcs[i].sru.fail()
        key = ("ingress", 0, ComponentKind.SRU)
        results = []
        proto.ensure_stream(key, 0, 1e9, results.append,
                            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET)
        # Run just past the solicitation timeout (300 us) but well inside
        # the retry cooldown (1 ms).
        eng.run(until=0.0005)
        assert results == [None]
        # Within cooldown: immediate None without a new solicitation.
        proto.ensure_stream(key, 0, 1e9, results.append,
                            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET)
        assert results == [None, None]
        # Heal a candidate, pass the cooldown, retry succeeds.
        lcs[2].sru.repair()
        eng.run(until=0.02)  # cooldown (1 ms) long past
        proto.ensure_stream(key, 0, 1e9, results.append,
                            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET)
        eng.run(until=0.03)
        assert results[-1] is not None
        assert results[-1].covering_lc == 2


class TestReversePath:
    def test_directed_request_answered_by_target(self):
        eng, lcs, eib, proto, stats = make_world()
        lcs[2].sru.fail()  # the faulty destination
        results = []
        proto.ensure_stream(
            ("reverse", 0, 2), 0, 1e9, results.append, rec_lc=2,
        )
        eng.run(until=0.01)
        stream = results[0]
        assert stream is not None
        assert stream.covering_lc == 2
        assert stream.sender_lc == 0

    def test_target_with_dead_piu_does_not_answer(self):
        eng, lcs, eib, proto, stats = make_world()
        lcs[2].piu.fail()
        results = []
        proto.ensure_stream(("reverse", 0, 2), 0, 1e9, results.append, rec_lc=2)
        eng.run(until=0.01)
        assert results == [None]


class TestLookupService:
    def test_remote_lookup_served(self):
        eng, lcs, eib, proto, stats = make_world()
        lcs[0].lfe.fail()
        results = []
        addr = 0x0A000000 + (2 << 16) + 7  # inside LC2's /16
        proto.request_lookup(0, addr, results.append)
        eng.run(until=0.01)
        assert results == [2]
        assert stats.remote_lookups == 1

    def test_no_healthy_lfe_times_out(self):
        eng, lcs, eib, proto, stats = make_world()
        for i in (1, 2, 3):
            lcs[i].lfe.fail()
        results = []
        proto.request_lookup(0, 0x0A000001, results.append)
        eng.run(until=0.01)
        assert results == [None]

    def test_lookup_with_dead_eib_fails_fast(self):
        eng, lcs, eib, proto, stats = make_world()
        eib.fail()
        results = []
        proto.request_lookup(0, 0x0A000001, results.append)
        assert results == [None]


class TestRelease:
    def test_release_frees_reservation_and_lp(self):
        eng, lcs, eib, proto, stats = make_world()
        key = ("ingress", 0, ComponentKind.SRU)
        results = []
        proto.ensure_stream(key, 0, 1e9, results.append,
                            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET)
        eng.run(until=0.01)
        winner = results[0].covering_lc
        proto.release_stream(key)
        eng.run(until=0.02)
        assert lcs[winner].committed_bps == 0.0
        assert not eib.data.has_lp(0)
        assert proto.stream(key) is None

    def test_release_streams_for_fault(self):
        eng, lcs, eib, proto, stats = make_world()
        key = ("ingress", 0, ComponentKind.SRU)
        done = []
        proto.ensure_stream(key, 0, 1e9, done.append,
                            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET)
        eng.run(until=0.01)
        proto.release_streams_for_fault(0, ComponentKind.SRU)
        assert proto.stream(key) is None

    def test_release_unknown_key_is_noop(self):
        eng, lcs, eib, proto, stats = make_world()
        proto.release_stream(("nope",))


class TestEIBFailure:
    def test_on_eib_failure_clears_everything(self):
        eng, lcs, eib, proto, stats = make_world()
        key = ("ingress", 0, ComponentKind.SRU)
        results = []
        proto.ensure_stream(key, 0, 1e9, results.append,
                            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET)
        eng.run(until=0.01)
        winner = results[0].covering_lc
        eib.fail()
        proto.on_eib_failure()
        assert proto.stream(key) is None
        assert lcs[winner].committed_bps == 0.0

    def test_send_on_inactive_stream_fails(self):
        eng, lcs, eib, proto, stats = make_world()
        key = ("ingress", 0, ComponentKind.SRU)
        results = []
        proto.ensure_stream(key, 0, 1e9, results.append,
                            fault_kind=ComponentKind.SRU, protocol=Protocol.ETHERNET)
        eng.run(until=0.01)
        stream = results[0]
        proto.release_stream(key)
        assert not proto.send_on_stream(stream, 100, lambda: None)


class TestLookupTimeoutHygiene:
    def test_successful_lookup_cancels_timeout(self):
        eng, lcs, eib, proto, stats = make_world()
        lcs[0].lfe.fail()
        results = []
        addr = 0x0A000000 + (2 << 16) + 7
        proto.request_lookup(0, addr, results.append)
        eng.run(until=0.01)
        assert results == [2]
        snap = proto.snapshot_state()
        # Regression: the timeout used to stay armed after a successful
        # REP_L -- dead events piling up in the engine heap.
        assert snap["armed_lookup_timeouts"] == 0
        assert snap["pending_lookups"] == 0

    def test_timed_out_lookup_unarms_itself(self):
        eng, lcs, eib, proto, stats = make_world()
        for i in (1, 2, 3):
            lcs[i].lfe.fail()
        results = []
        proto.request_lookup(0, 0x0A000001, results.append)
        eng.run(until=0.01)
        assert results == [None]
        snap = proto.snapshot_state()
        assert snap["armed_lookup_timeouts"] == 0
        assert snap["pending_lookups"] == 0

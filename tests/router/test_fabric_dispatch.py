"""Batched-vs-scalar cell-dispatch equivalence oracle.

The contract (docs/performance.md): ``cell_dispatch="batched"`` must be
*event-content bit-identical* to the ``"scalar"`` reference -- same
delivery timestamps to the ulp, same trace events (including the
engine's per-event ``sim.fire`` stream and its sequence numbers), same
counters -- on any seeded workload.  Three layers of evidence:

1. a seed x jobs matrix of full chaos campaigns whose JSON reports must
   match exactly (both coverage policies);
2. full in-memory traces of a replayed schedule compared event by event;
3. hypothesis property tests driving a bare fabric with random cell runs
   and mid-burst ``fail_card``/``repair_card`` churn, asserting exact
   (``==``, not approx) equality of every delivery tuple.
"""

import itertools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.campaign import CampaignConfig, _replay_for_trace, run_campaign
from repro.obs import trace as _trace
from repro.router import packets as _packets
from repro.router.fabric import SwitchFabric
from repro.router.packets import Cell
from repro.sim import Engine


def _campaign_report(base_seed: int, jobs: int, dispatch: str, policy: str) -> dict:
    cfg = CampaignConfig(
        seeds=2,
        base_seed=base_seed,
        duration_s=0.002,
        drain_s=0.012,
        coverage_policy=policy,
        cell_dispatch=dispatch,
    )
    report = run_campaign(cfg, jobs=jobs)
    # The configs legitimately differ in their cell_dispatch field; every
    # *result* byte must be identical.
    report.pop("config")
    return report


class TestCampaignBitIdentity:
    @pytest.mark.parametrize("base_seed", [0, 1, 12345])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_seed_matrix(self, base_seed, jobs):
        batched = _campaign_report(base_seed, jobs, "batched", "static")
        scalar = _campaign_report(base_seed, jobs, "scalar", "static")
        assert json.dumps(batched, sort_keys=True) == json.dumps(
            scalar, sort_keys=True
        )

    def test_adaptive_policy(self):
        batched = _campaign_report(0, 1, "batched", "adaptive")
        scalar = _campaign_report(0, 1, "scalar", "adaptive")
        assert json.dumps(batched, sort_keys=True) == json.dumps(
            scalar, sort_keys=True
        )


class TestTraceBitIdentity:
    def _capture(self, dispatch: str) -> list[tuple]:
        cfg = CampaignConfig(
            seeds=1,
            base_seed=7,
            duration_s=0.002,
            drain_s=0.012,
            cell_dispatch=dispatch,
        )
        # Packet ids come from a process-global counter; restart it so
        # the two captures mint identical ids for identical packets.
        _packets._packet_ids = itertools.count()
        tracer = _trace.Tracer(path=None)
        previous = _trace.TRACER
        _trace.set_tracer(tracer)
        try:
            _replay_for_trace(cfg, 0)
        finally:
            _trace.set_tracer(previous)
        return [(ev.seq, ev.t, ev.kind, ev.data) for ev in tracer.events]

    def test_full_traces_match_including_event_seqs(self):
        batched = self._capture("batched")
        scalar = self._capture("scalar")
        assert len(batched) == len(scalar)
        # Event-by-event: timestamps to the ulp, kinds, payloads, and the
        # engine's sequence numbers -- the strongest equivalence surface
        # the instrumentation exposes.
        assert batched == scalar


# One fabric "script": cell runs landing at random instants on random
# ports, interleaved with card fail/repair operations.
_ops = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30e-6, allow_nan=False),
        st.sampled_from(["run", "fail", "repair"]),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=1, max_value=24),
    ),
    min_size=1,
    max_size=16,
)


def _drive(ops, dispatch: str):
    """Run one scripted workload; return every observable outcome."""
    eng = Engine()
    fabric = SwitchFabric(
        eng, 2, port_rate_cells_per_s=1e6, cell_dispatch=dispatch
    )
    deliveries: list[tuple] = []

    def schedule_op(t, kind, card, n_cells, port):
        if kind == "run":
            cells = [
                Cell(pkt_id=0, seq=s, total=n_cells, payload_bytes=48, dst_lc=port)
                for s in range(n_cells)
            ]

            def inject():
                fabric.transfer_run(
                    cells,
                    port,
                    lambda c: deliveries.append((port, c.seq, eng.now)),
                )

            eng.schedule(t, inject)
        elif kind == "fail":
            eng.schedule(t, lambda: fabric.fail_card(card))
        else:
            eng.schedule(t, lambda: fabric.repair_card(card))

    for i, (t, kind, card, n_cells) in enumerate(ops):
        schedule_op(t, kind, card, n_cells, port=i % 2)
    eng.run()
    return (
        deliveries,
        [fabric.delivered_cells(p) for p in range(2)],
        [fabric.dropped_cells(p) for p in range(2)],
        eng.now,
        eng.events_processed,
    )


class TestBurstSplitProperties:
    @settings(max_examples=40, deadline=None)
    @given(ops=_ops)
    def test_random_churn_is_bit_identical(self, ops):
        # Exact tuple equality: delivery timestamps under mid-burst rate
        # changes must match the scalar clock to the ulp, and so must the
        # conservation counters and the engine's event totals.
        assert _drive(ops, "batched") == _drive(ops, "scalar")

    def test_mid_burst_degradation_splits_at_exact_boundary(self):
        # Deterministic split check: 4 cells at 1 us, degraded to 0.75 of
        # the rate after the second delivery -- the remaining gaps widen
        # to exactly 1/0.75 us from that boundary on, in both modes.
        for dispatch in ("batched", "scalar"):
            eng = Engine()
            fabric = SwitchFabric(
                eng, 2, port_rate_cells_per_s=1e6, cell_dispatch=dispatch
            )
            times = []
            cells = [
                Cell(pkt_id=0, seq=s, total=4, payload_bytes=48, dst_lc=0)
                for s in range(4)
            ]
            fabric.transfer_run(cells, 0, lambda c: times.append(eng.now))
            eng.schedule(2.5e-6, lambda f=fabric: (f.fail_card(0), f.fail_card(1)))
            eng.run()
            assert times[:2] == [1e-6, 2e-6]
            t2 = 2e-6 + 1e-6  # third boundary, full-rate float arithmetic
            slow = 1.0 / (1e6 * 0.75)
            assert times[2] == t2  # already in service at the old rate
            assert times[3] == t2 + slow

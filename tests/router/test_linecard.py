"""Linecard assembly and coverage-capability tests."""

import pytest

from repro.router.components import ComponentKind
from repro.router.linecard import Linecard
from repro.router.packets import Protocol


def dra_lc(lc_id=0, protocol=Protocol.ETHERNET, capacity=10e9):
    return Linecard(lc_id, protocol, dra=True, capacity_bps=capacity)


class TestConstruction:
    def test_dra_unit_set(self):
        lc = dra_lc()
        assert lc.pdlu is not None
        assert lc.bus_controller is not None
        assert len(lc.units()) == 5

    def test_bdr_unit_set(self):
        lc = Linecard(0, Protocol.ETHERNET, dra=False)
        assert lc.pdlu is None
        assert lc.bus_controller is None
        assert len(lc.units()) == 3

    def test_unit_lookup(self):
        lc = dra_lc()
        assert lc.unit(ComponentKind.SRU) is lc.sru
        assert lc.unit(ComponentKind.PDLU) is lc.pdlu

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            Linecard(0, Protocol.ETHERNET, capacity_bps=0.0)


class TestHealth:
    def test_fully_healthy(self):
        lc = dra_lc()
        assert lc.fully_healthy and lc.datapath_healthy

    def test_failed_kinds(self):
        lc = dra_lc()
        lc.sru.fail()
        lc.lfe.fail()
        assert lc.failed_kinds() == {ComponentKind.SRU, ComponentKind.LFE}

    def test_bus_controller_not_on_datapath(self):
        lc = dra_lc()
        lc.bus_controller.fail()
        assert not lc.fully_healthy
        assert lc.datapath_healthy


class TestCapacityAccounting:
    def test_reserve_release(self):
        lc = dra_lc()
        assert lc.reserve(4e9)
        assert lc.headroom_bps == pytest.approx(6e9)
        lc.release(4e9)
        assert lc.headroom_bps == pytest.approx(10e9)

    def test_overcommit_rejected(self):
        lc = dra_lc()
        assert lc.reserve(8e9)
        assert not lc.reserve(3e9)
        assert lc.committed_bps == pytest.approx(8e9)

    def test_release_floor_at_zero(self):
        lc = dra_lc()
        lc.release(5e9)
        assert lc.committed_bps == 0.0

    def test_negative_amounts_rejected(self):
        lc = dra_lc()
        with pytest.raises(ValueError):
            lc.reserve(-1.0)
        with pytest.raises(ValueError):
            lc.release(-1.0)


class TestCanCover:
    def test_covers_matching_pdlu_fault(self):
        lc = dra_lc(protocol=Protocol.ATM)
        assert lc.can_cover(ComponentKind.PDLU, Protocol.ATM, 1e9)

    def test_protocol_mismatch_blocks_pdlu_coverage(self):
        lc = dra_lc(protocol=Protocol.ETHERNET)
        assert not lc.can_cover(ComponentKind.PDLU, Protocol.ATM, 1e9)

    def test_sru_fault_needs_no_protocol_match(self):
        lc = dra_lc(protocol=Protocol.ETHERNET)
        assert lc.can_cover(ComponentKind.SRU, Protocol.ATM, 1e9)

    def test_bdr_card_cannot_cover(self):
        lc = Linecard(0, Protocol.ETHERNET, dra=False)
        assert not lc.can_cover(ComponentKind.SRU, Protocol.ETHERNET, 1e9)

    def test_dead_bus_controller_blocks(self):
        lc = dra_lc()
        lc.bus_controller.fail()
        assert not lc.can_cover(ComponentKind.SRU, Protocol.ETHERNET, 1e9)

    def test_covering_unit_must_be_healthy(self):
        lc = dra_lc()
        lc.sru.fail()
        assert not lc.can_cover(ComponentKind.SRU, Protocol.ETHERNET, 1e9)

    def test_downstream_units_must_be_healthy_for_pdlu(self):
        lc = dra_lc()
        lc.lfe.fail()
        assert not lc.can_cover(ComponentKind.PDLU, Protocol.ETHERNET, 1e9)

    def test_lfe_coverage_ignores_sru(self):
        lc = dra_lc()
        lc.sru.fail()
        # A pure lookup service needs only the LFE (and bus controller).
        assert lc.can_cover(ComponentKind.LFE, Protocol.ETHERNET, 0.0)

    def test_piu_fault_never_coverable(self):
        lc = dra_lc()
        assert not lc.can_cover(ComponentKind.PIU, Protocol.ETHERNET, 1e9)

    def test_headroom_gates_coverage(self):
        lc = dra_lc()
        lc.reserve(9.5e9)
        assert not lc.can_cover(ComponentKind.SRU, Protocol.ETHERNET, 1e9)
        assert lc.can_cover(ComponentKind.SRU, Protocol.ETHERNET, 0.4e9)

"""EIB bandwidth-allocator tests."""

import pytest

from repro.router.bandwidth import EIBBandwidthAllocator


class TestAllocator:
    def test_undersubscribed_full_promise(self):
        alloc = EIBBandwidthAllocator(10e9)
        a = alloc.register(1, 3e9)
        b = alloc.register(2, 4e9)
        assert a.promised_bps == pytest.approx(3e9)
        assert b.promised_bps == pytest.approx(4e9)
        assert not alloc.oversubscribed

    def test_oversubscription_scales_back(self):
        alloc = EIBBandwidthAllocator(10e9)
        alloc.register(1, 12e9)
        alloc.register(2, 8e9)
        promises = alloc.promises()
        assert alloc.oversubscribed
        assert promises[1] == pytest.approx(6e9)
        assert promises[2] == pytest.approx(4e9)
        assert sum(promises.values()) == pytest.approx(10e9)

    def test_deregister_restores_promises(self):
        alloc = EIBBandwidthAllocator(10e9)
        alloc.register(1, 12e9)
        alloc.register(2, 8e9)
        alloc.deregister(1)
        assert alloc.allocation(2).promised_bps == pytest.approx(8e9)

    def test_update_request(self):
        alloc = EIBBandwidthAllocator(10e9)
        alloc.register(1, 2e9)
        alloc.update_request(1, 14e9)
        assert alloc.allocation(1).promised_bps == pytest.approx(10e9)

    def test_duplicate_register_rejected(self):
        alloc = EIBBandwidthAllocator(10e9)
        alloc.register(1, 1e9)
        with pytest.raises(ValueError, match="already"):
            alloc.register(1, 1e9)

    def test_deregister_unknown_rejected(self):
        with pytest.raises(ValueError, match="not registered"):
            EIBBandwidthAllocator(10e9).deregister(5)

    def test_negative_request_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            EIBBandwidthAllocator(10e9).register(1, -1.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            EIBBandwidthAllocator(0.0)


class TestPacing:
    def test_charge_advances_virtual_clock(self):
        alloc = EIBBandwidthAllocator(10e9)
        alloc.register(1, 1e9)  # promise: 1 Gbps
        t0 = alloc.charge(1, 125_000, now=0.0)  # 1 Mb at 1 Gbps = 1 ms
        t1 = alloc.charge(1, 125_000, now=0.0)
        assert t0 == pytest.approx(0.0)
        assert t1 == pytest.approx(1e-3)

    def test_idle_credit_not_banked(self):
        alloc = EIBBandwidthAllocator(10e9)
        alloc.register(1, 1e9)
        alloc.charge(1, 125_000, now=0.0)
        # Long idle: next packet is eligible immediately at `now`, not earlier.
        t = alloc.charge(1, 125_000, now=5.0)
        assert t == pytest.approx(5.0)

    def test_zero_promise_never_eligible(self):
        alloc = EIBBandwidthAllocator(10e9)
        alloc.register(1, 0.0)
        assert alloc.charge(1, 100, now=0.0) == float("inf")

    def test_total_requested(self):
        alloc = EIBBandwidthAllocator(10e9)
        alloc.register(1, 1e9)
        alloc.register(2, 2e9)
        assert alloc.total_requested_bps == pytest.approx(3e9)

"""Property-based tests for the EIB channels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.router.arbitration import DistributedArbiter
from repro.router.bandwidth import EIBBandwidthAllocator
from repro.router.bus import ControlChannel, DataChannel
from repro.router.packets import ControlKind, ControlPacket
from repro.sim import Engine
from tests.strategies import transfer_scripts


@settings(max_examples=50, deadline=None)
@given(script=transfer_scripts(), seed=st.integers(min_value=0, max_value=99))
def test_data_channel_conserves_packets(script, seed):
    """delivered + dropped == enqueued, and the arbiter stays coherent,
    for arbitrary open/enqueue/close interleavings."""
    eng = Engine()
    arb = DistributedArbiter([0, 1, 2])
    alloc = EIBBandwidthAllocator(10e9)
    data = DataChannel(eng, arb, alloc, buffer_bytes=20_000)
    delivered = [0]
    attempted = 0
    accepted = 0
    open_lcs: set[int] = set()
    for op, lc, size in script:
        if op == "open" and lc not in open_lcs:
            data.open_lp(lc, 1e9)
            open_lcs.add(lc)
        elif op == "enqueue":
            attempted += 1
            if data.enqueue(lc, size, lambda: delivered.__setitem__(0, delivered[0] + 1)):
                accepted += 1
        elif op == "close" and lc in open_lcs:
            data.close_lp(lc)
            open_lcs.discard(lc)
        arb.check_coherence()
    eng.run()
    arb.check_coherence()
    assert delivered[0] == accepted
    assert data.dropped_packets == attempted - accepted
    assert data.transferred_packets == accepted


@settings(max_examples=30, deadline=None)
@given(
    n_senders=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=99),
)
def test_control_channel_delivers_everything(n_senders, seed):
    """However many stations contend simultaneously, CSMA/CD eventually
    delivers every broadcast exactly once to every other station."""
    eng = Engine()
    chan = ControlChannel(eng, np.random.default_rng(seed))
    received: dict[int, list[int]] = {lc: [] for lc in range(n_senders + 1)}
    for lc in received:
        chan.attach(lc, lambda p, lc=lc: received[lc].append(p.init_lc))
    for sender in range(n_senders):
        chan.broadcast(
            ControlPacket(kind=ControlKind.REQ_D, init_lc=sender), sender
        )
    eng.run()
    assert chan.failures == 0
    for lc, log in received.items():
        expected = sorted(s for s in range(n_senders) if s != lc)
        assert sorted(log) == expected

"""Distributed-arbiter tests: the counter mechanism of Section 4."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.router.arbitration import ArbitrationError, DistributedArbiter


def arbiter(n=6):
    return DistributedArbiter(list(range(n)))


class TestEstablishment:
    def test_ids_assigned_in_completion_order(self):
        arb = arbiter()
        assert arb.establish(4) == 1
        assert arb.establish(2) == 2
        assert arb.establish(0) == 3
        assert arb.beta == 3

    def test_duplicate_establish_rejected(self):
        arb = arbiter()
        arb.establish(1)
        with pytest.raises(ArbitrationError, match="already holds"):
            arb.establish(1)

    def test_unknown_lc_rejected(self):
        with pytest.raises(ArbitrationError, match="not on this bus"):
            arbiter(3).establish(9)

    def test_newcomer_leads(self):
        """"the most recently added requesting LC has its first turn"."""
        arb = arbiter()
        arb.establish(0)
        arb.establish(1)
        assert arb.current_turn() == 1

    def test_coherence_after_establishments(self):
        arb = arbiter()
        for lc in (3, 1, 4):
            arb.establish(lc)
        arb.check_coherence()


class TestTurnTaking:
    def test_single_lp_loops(self):
        arb = arbiter()
        arb.establish(2)
        for _ in range(4):
            assert arb.current_turn() == 2
            arb.finish_turn(2)

    def test_round_robin_descending_ids(self):
        arb = arbiter()
        arb.establish(0)  # id 1
        arb.establish(1)  # id 2
        arb.establish(2)  # id 3
        order = []
        for _ in range(6):
            lc = arb.current_turn()
            order.append(lc)
            arb.finish_turn(lc)
        # Per round: id 3, 2, 1 -> LCs 2, 1, 0, repeating.
        assert order == [2, 1, 0, 2, 1, 0]

    def test_fairness_every_lp_once_per_round(self):
        arb = arbiter()
        for lc in range(4):
            arb.establish(lc)
        seen = []
        for _ in range(4):
            lc = arb.current_turn()
            seen.append(lc)
            arb.finish_turn(lc)
        assert sorted(seen) == [0, 1, 2, 3]
        assert arb.rounds_completed == 1

    def test_finish_out_of_turn_rejected(self):
        arb = arbiter()
        arb.establish(0)
        arb.establish(1)
        with pytest.raises(ArbitrationError, match="does not hold"):
            arb.finish_turn(0)

    def test_idle_bus(self):
        assert arbiter().current_turn() is None


class TestRelease:
    def test_release_compacts_ids(self):
        arb = arbiter()
        arb.establish(0)  # id 1
        arb.establish(1)  # id 2
        arb.establish(2)  # id 3
        assert arb.release(1) == 2
        assert arb.counters(0).ctr_id == 1
        assert arb.counters(2).ctr_id == 2  # shifted down
        assert arb.beta == 2
        arb.check_coherence()

    def test_release_preserves_current_holder_turn(self):
        arb = arbiter()
        arb.establish(0)  # id 1
        arb.establish(1)  # id 2
        arb.establish(2)  # id 3; turn starts at id 3 = LC 2
        arb.release(0)  # id 1 goes away; LC2 becomes id 2, LC1 id 1
        assert arb.current_turn() == 2
        arb.check_coherence()

    def test_release_own_turn_moves_on(self):
        arb = arbiter()
        arb.establish(0)
        arb.establish(1)  # turn: LC1 (id 2)
        arb.release(1)
        assert arb.current_turn() == 0
        arb.check_coherence()

    def test_release_last_lp_idles(self):
        arb = arbiter()
        arb.establish(3)
        arb.release(3)
        assert arb.beta == 0
        assert arb.current_turn() is None
        arb.check_coherence()

    def test_double_release_rejected(self):
        arb = arbiter()
        arb.establish(0)
        arb.release(0)
        with pytest.raises(ArbitrationError, match="no LP"):
            arb.release(0)

    def test_reestablish_after_release(self):
        arb = arbiter()
        arb.establish(0)
        arb.release(0)
        assert arb.establish(0) == 1
        assert arb.current_turn() == 0


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(st.integers(min_value=0, max_value=11), max_size=60))
    def test_random_op_sequences_stay_coherent(self, ops):
        """Drive random establish/finish/release sequences; the mirrored
        counters must stay coherent and the ID space dense throughout."""
        arb = DistributedArbiter(list(range(4)))
        held = set()
        for op in ops:
            lc = op % 4
            action = op // 4  # 0: establish, 1: release, 2: finish turn
            if action == 0 and lc not in held:
                arb.establish(lc)
                held.add(lc)
            elif action == 1 and lc in held:
                arb.release(lc)
                held.discard(lc)
            elif action == 2 and held:
                turn = arb.current_turn()
                if turn is not None:
                    arb.finish_turn(turn)
            arb.check_coherence()
            assert arb.beta == len(held)
            if held:
                assert arb.current_turn() in held

"""Property-based tests for the Section 4/5.3 bandwidth algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.performance import promised_bandwidth
from repro.validate import FLOAT_EPS, distribution_atol
from tests.strategies import bandwidth_requests, loads, performance_models


class TestPromisedBandwidth:
    @settings(max_examples=100, deadline=None)
    @given(requests=bandwidth_requests,
           capacity=st.floats(min_value=1e6, max_value=100e9, allow_nan=False))
    def test_oversubscribed_shares_sum_to_bus_capacity(self, requests, capacity):
        """When demand exceeds B_BUS the scale-back hands out exactly the
        bus, never more, never stranded capacity."""
        promises = promised_bandwidth(requests, capacity)
        total_request = float(np.sum(requests))
        if total_request <= capacity:
            np.testing.assert_array_equal(promises, requests)
        else:
            # relative rounding budget, same derivation as the
            # probability-vector checks
            assert abs(promises.sum() - capacity) <= (
                capacity * distribution_atol(len(requests))
            )

    @settings(max_examples=100, deadline=None)
    @given(requests=bandwidth_requests,
           capacity=st.floats(min_value=1e6, max_value=100e9, allow_nan=False))
    def test_no_promise_exceeds_its_request(self, requests, capacity):
        promises = promised_bandwidth(requests, capacity)
        assert np.all(promises <= np.asarray(requests) * (1.0 + 1e-12))
        assert np.all(promises >= 0.0)

    @settings(max_examples=50, deadline=None)
    @given(requests=bandwidth_requests,
           capacity=st.floats(min_value=1e6, max_value=100e9, allow_nan=False))
    def test_scale_back_is_proportional(self, requests, capacity):
        """B_prom = (B_LC / B_LCT) * B_BUS: equal requests get equal
        promises and ratios between requests are preserved."""
        promises = promised_bandwidth(requests, capacity)
        req = np.asarray(requests)
        for i in range(len(requests)):
            for j in range(len(requests)):
                # cross-multiplied to avoid dividing by zero requests
                lhs = promises[i] * req[j]
                rhs = promises[j] * req[i]
                # relative rounding slack: a few thousand ulps of the
                # larger product.  Below tiny/eps one relative ulp is
                # subnormal, so an absolute floor at that threshold
                # covers products whose intermediate promise underflowed.
                tiny = np.finfo(np.float64).tiny
                assert abs(lhs - rhs) <= 2**13 * FLOAT_EPS * max(
                    abs(lhs), abs(rhs)
                ) + tiny / FLOAT_EPS


class TestBandwidthToFaulty:
    @settings(max_examples=100, deadline=None)
    @given(model=performance_models(), load=loads)
    def test_degenerates_to_bdr_at_zero_faults(self, model, load):
        """With no faulty LCs nothing rides the EIB: every LC carries
        exactly its own offered traffic, which is the BDR baseline."""
        assert model.bandwidth_to_faulty(0, load) == model.required(load)
        # 100 * x / x rounds twice, so exact equality only up to ulps
        assert model.degradation_percent(0, load) == pytest.approx(
            100.0, rel=4 * FLOAT_EPS
        )

    @settings(max_examples=100, deadline=None)
    @given(model=performance_models(), load=loads)
    def test_monotone_nonincreasing_in_faulty_count(self, model, load):
        """More faulty LCs can never mean more bandwidth per faulty LC:
        the donor pool shrinks while the claimants multiply."""
        series = [
            model.bandwidth_to_faulty(k, load) for k in range(model.n)
        ]
        for smaller, larger in zip(series[1:], series):
            assert smaller <= larger

    @settings(max_examples=100, deadline=None)
    @given(model=performance_models(), load=loads)
    def test_bounded_by_required_and_bus(self, model, load):
        for k in range(1, model.n):
            b = model.bandwidth_to_faulty(k, load)
            assert 0.0 <= b <= model.required(load)
            assert b <= model.bus_capacity / k

    @settings(max_examples=100, deadline=None)
    @given(model=performance_models(), load=loads)
    def test_saturation_point_is_the_first_shortfall(self, model, load):
        """Everything left of the saturation point runs at 100%;
        everything at or right of it runs short."""
        sat = model.saturation_point(load)
        required = model.required(load)
        for k in range(1, model.n):
            full = model.bandwidth_to_faulty(k, load) == required
            if sat is None or k < sat:
                assert full
            else:
                assert not full

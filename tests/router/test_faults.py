"""Fault-injector tests."""

import numpy as np
import pytest

from repro.core.parameters import FailureRates
from repro.router import ComponentKind, FaultInjector, Router, RouterConfig
from repro.router.faults import ComponentRates


class TestComponentRates:
    def test_from_failure_rates_splits_pi_evenly(self):
        cr = ComponentRates.from_failure_rates(FailureRates())
        assert cr.sru == pytest.approx(7e-6)
        assert cr.lfe == pytest.approx(7e-6)
        assert cr.pdlu == pytest.approx(6e-6)
        assert cr.piu == 0.0  # excluded by default, as in the analysis

    def test_acceleration(self):
        cr = ComponentRates.from_failure_rates(FailureRates(), accel=1000.0)
        assert cr.pdlu == pytest.approx(6e-3)

    def test_include_piu(self):
        cr = ComponentRates.from_failure_rates(FailureRates(), include_piu=True)
        assert cr.piu > 0.0

    def test_rate_of(self):
        cr = ComponentRates()
        assert cr.rate_of(ComponentKind.SRU) == cr.sru
        assert cr.rate_of(ComponentKind.BUS_CONTROLLER) == cr.bus_controller


class TestInjector:
    def test_failures_fire_and_reflect_in_router(self):
        r = Router(RouterConfig(n_linecards=4, seed=1))
        # Hugely accelerated: expected dozens of failures within the window.
        inj = FaultInjector.accelerated(r, np.random.default_rng(0), accel=1e7)
        inj.start()
        r.run(until=10.0)
        assert len(inj.failures()) > 0
        for ev in inj.failures():
            if ev.lc_id is not None:
                assert r.faults.is_failed(ev.lc_id, ev.kind) or any(
                    rep.lc_id == ev.lc_id and rep.kind == ev.kind
                    for rep in inj.repairs()
                )

    def test_no_repair_without_rate(self):
        r = Router(RouterConfig(n_linecards=4, seed=1))
        inj = FaultInjector.accelerated(r, np.random.default_rng(0), accel=1e7)
        inj.start()
        r.run(until=10.0)
        assert inj.repairs() == []

    def test_repairs_follow_failures(self):
        r = Router(RouterConfig(n_linecards=4, seed=2))
        inj = FaultInjector.accelerated(
            r, np.random.default_rng(1), accel=1e7, repair_rate=10.0
        )
        inj.start()
        r.run(until=20.0)
        assert len(inj.repairs()) > 0
        for rep in inj.repairs():
            assert any(
                f.time <= rep.time and f.lc_id == rep.lc_id and f.kind == rep.kind
                for f in inj.failures()
            )

    def test_eib_failure_event(self):
        r = Router(RouterConfig(n_linecards=4, seed=3))
        rates = ComponentRates(
            pdlu=0.0, sru=0.0, lfe=0.0, bus_controller=0.0, eib=1.0
        )
        inj = FaultInjector(r, rates, np.random.default_rng(2))
        inj.start()
        r.run(until=50.0)
        eib_events = [e for e in inj.log if e.lc_id is None]
        assert len(eib_events) == 1
        assert not r.eib.healthy

    def test_zero_rates_fire_nothing(self):
        r = Router(RouterConfig(n_linecards=4, seed=4))
        rates = ComponentRates(pdlu=0.0, sru=0.0, lfe=0.0, bus_controller=0.0, eib=0.0)
        inj = FaultInjector(r, rates, np.random.default_rng(3))
        inj.start()
        r.run(until=100.0)
        assert inj.log == []

    def test_deterministic_with_seed(self):
        def run(seed):
            r = Router(RouterConfig(n_linecards=4, seed=9))
            inj = FaultInjector.accelerated(
                r, np.random.default_rng(seed), accel=1e7
            )
            inj.start()
            r.run(until=5.0)
            return [(e.time, e.lc_id, e.kind) for e in inj.log]

        assert run(7) == run(7)
        assert run(7) != run(8)

"""End-to-end packet-pipeline tests on the assembled router."""

import pytest

from repro.router import ComponentKind, Router, RouterConfig, RouterMode
from repro.router.packets import Packet, Protocol
from repro.router.recovery import DropReason
from repro.router.routing import ipv4


def make_router(n=4, mode=RouterMode.DRA, protocols=(Protocol.ETHERNET,), seed=0):
    return Router(RouterConfig(n_linecards=n, mode=mode, protocols=protocols, seed=seed))


def send(router, src=0, dst=1, size=500):
    pkt = Packet(
        src_lc=src,
        dst_lc=dst,
        dst_addr=ipv4("10.0.0.0") + (dst << 16) + 7,
        size_bytes=size,
        protocol=router.linecards[src].protocol,
        created_at=router.engine.now,
    )
    router.inject(pkt)
    return pkt


class TestHealthyPipeline:
    @pytest.mark.parametrize("mode", [RouterMode.DRA, RouterMode.BDR])
    def test_packet_delivered(self, mode):
        r = make_router(mode=mode)
        pkt = send(r)
        r.run(until=0.01)
        assert r.stats.delivered == 1
        assert pkt.delivered_at is not None
        assert pkt.latency > 0.0

    def test_path_records_stages(self):
        r = make_router()
        pkt = send(r)
        r.run(until=0.01)
        joined = " ".join(pkt.path)
        for marker in ("in@LC0", "pdlu@LC0", "sru@LC0", "lookup@LC0->LC1",
                       "fabric->1", "sru@LC1", "pdlu@LC1", "out@LC1"):
            assert marker in joined, f"missing {marker} in {pkt.path}"

    def test_lookup_routes_by_address(self):
        """The LFE lookup, not the packet's dst field, selects the port."""
        r = make_router()
        pkt = Packet(0, 1, ipv4("10.0.0.0") + (2 << 16) + 1, 500,
                     Protocol.ETHERNET, 0.0)
        r.inject(pkt)
        r.run(until=0.01)
        assert r.stats.delivered_by_lc[2] == 1

    def test_unroutable_address_dropped(self):
        r = make_router()
        pkt = Packet(0, 1, ipv4("192.168.0.1"), 500, Protocol.ETHERNET, 0.0)
        r.inject(pkt)
        r.run(until=0.01)
        assert r.stats.drops[DropReason.NO_ROUTE] == 1

    def test_bdr_has_no_eib(self):
        r = make_router(mode=RouterMode.BDR)
        assert r.eib is None
        with pytest.raises(RuntimeError, match="no EIB"):
            r.fail_eib()


class TestIngressCoverage:
    @pytest.mark.parametrize("kind", [ComponentKind.PDLU, ComponentKind.SRU])
    def test_fault_covered_via_eib(self, kind):
        r = make_router()
        r.set_offered_load(0, 1e9)
        r.inject_fault(0, kind)
        pkt = send(r, src=0, dst=1)
        r.run(until=0.01)
        assert r.stats.delivered == 1
        assert any(h.startswith("eib:LC0->") for h in pkt.path)
        assert r.stats.covered_deliveries == 1

    def test_lfe_fault_served_by_remote_lookup(self):
        r = make_router()
        r.inject_fault(0, ComponentKind.LFE)
        pkt = send(r, src=0, dst=2)
        r.run(until=0.01)
        assert r.stats.delivered == 1
        assert r.stats.remote_lookups == 1
        assert any(h.startswith("req_l") for h in pkt.path)
        # Data still crossed the fabric (only the lookup went remote).
        assert any(h.startswith("fabric->") for h in pkt.path)

    def test_piu_fault_uncoverable(self):
        r = make_router()
        r.inject_fault(0, ComponentKind.PIU)
        send(r, src=0)
        r.run(until=0.01)
        assert r.stats.drops[DropReason.PIU_IN] == 1

    def test_coverage_unavailable_drops(self):
        r = make_router(n=3)
        r.inject_fault(0, ComponentKind.SRU)
        r.inject_fault(2, ComponentKind.SRU)
        # LC1 could still answer the broadcast (nothing in the protocol
        # stops LC_out from covering); take out its bus controller so no
        # candidate remains at all.
        r.inject_fault(1, ComponentKind.BUS_CONTROLLER)
        send(r, src=0, dst=1)
        r.run(until=0.01)
        assert r.stats.drops[DropReason.NO_COVERAGE] == 1


class TestEgressCoverage:
    def test_dst_sru_fault_direct_eib(self):
        r = make_router()
        r.set_offered_load(0, 1e9)
        r.inject_fault(1, ComponentKind.SRU)
        pkt = send(r, src=0, dst=1)
        r.run(until=0.01)
        assert r.stats.delivered == 1
        assert any("direct" in h for h in pkt.path)
        # The packet must NOT have passed dst's SRU.
        assert "sru@LC1" not in pkt.path

    def test_dst_pdlu_same_protocol_direct(self):
        r = make_router()
        r.set_offered_load(0, 1e9)
        r.inject_fault(1, ComponentKind.PDLU)
        pkt = send(r, src=0, dst=1)
        r.run(until=0.01)
        assert r.stats.delivered == 1
        assert "pdlu@LC1" not in pkt.path
        assert any("direct" in h for h in pkt.path)

    def test_dst_pdlu_cross_protocol_via_inter(self):
        r = make_router(n=6, protocols=(Protocol.ETHERNET, Protocol.SONET_POS))
        r.set_offered_load(0, 1e9)
        r.inject_fault(1, ComponentKind.PDLU)  # LC1: SONET
        pkt = send(r, src=0, dst=1)  # LC0: Ethernet
        r.run(until=0.01)
        assert r.stats.delivered == 1
        inters = [h for h in pkt.path if h.startswith("inter@LC")]
        assert len(inters) == 1
        inter_lc = int(inters[0].split("LC")[1])
        assert r.linecards[inter_lc].protocol is Protocol.SONET_POS

    def test_dst_piu_fault_drops(self):
        r = make_router()
        r.inject_fault(1, ComponentKind.PIU)
        send(r, src=0, dst=1)
        r.run(until=0.01)
        assert r.stats.drops[DropReason.PIU_OUT] == 1


class TestBDRBehaviour:
    @pytest.mark.parametrize(
        "kind", [ComponentKind.SRU, ComponentKind.LFE, ComponentKind.PIU]
    )
    def test_any_src_fault_downs_the_lc(self, kind):
        r = make_router(mode=RouterMode.BDR)
        r.inject_fault(0, kind)
        send(r, src=0, dst=1)
        r.run(until=0.01)
        assert r.stats.delivered == 0
        assert r.stats.drops[DropReason.BDR_LC_DOWN_IN] == 1

    def test_dst_fault_downs_the_lc(self):
        r = make_router(mode=RouterMode.BDR)
        r.inject_fault(1, ComponentKind.SRU)
        send(r, src=0, dst=1)
        r.run(until=0.01)
        assert r.stats.drops[DropReason.BDR_LC_DOWN_OUT] == 1

    def test_bdr_lc_has_no_pdlu_to_fail(self):
        r = make_router(mode=RouterMode.BDR)
        with pytest.raises(ValueError, match="no PDLU"):
            r.inject_fault(0, ComponentKind.PDLU)


class TestRepair:
    def test_repair_restores_normal_path(self):
        r = make_router()
        r.set_offered_load(0, 1e9)
        r.inject_fault(0, ComponentKind.SRU)
        send(r, src=0, dst=1)
        r.run(until=0.01)
        r.repair_fault(0, ComponentKind.SRU)
        pkt = send(r, src=0, dst=1)
        r.run(until=0.02)
        assert r.stats.delivered == 2
        assert not any(h.startswith("eib:") for h in pkt.path)

    def test_eib_repair_reenables_coverage(self):
        r = make_router()
        r.set_offered_load(0, 1e9)
        r.inject_fault(0, ComponentKind.SRU)
        r.fail_eib()
        send(r, src=0, dst=1)
        r.run(until=0.002)
        assert r.stats.drops[DropReason.NO_COVERAGE] == 1
        r.repair_eib()
        r.run(until=0.004)  # let the failed-stream cooldown expire
        send(r, src=0, dst=1)
        r.run(until=0.02)
        assert r.stats.delivered == 1


class TestLoadAccounting:
    def test_offered_load_consumes_headroom(self):
        r = make_router()
        r.set_offered_load(2, 6e9)
        assert r.linecards[2].headroom_bps == pytest.approx(4e9)

    def test_offered_load_replaces_previous(self):
        r = make_router()
        r.set_offered_load(2, 6e9)
        r.set_offered_load(2, 1e9)
        assert r.linecards[2].headroom_bps == pytest.approx(9e9)

    def test_excessive_load_rejected(self):
        r = make_router()
        with pytest.raises(ValueError, match="exceeds"):
            r.set_offered_load(0, 20e9)

    def test_negative_load_rejected(self):
        r = make_router()
        with pytest.raises(ValueError, match="negative"):
            r.set_offered_load(0, -1.0)


class TestTerminalStateIdempotence:
    """A packet reaches exactly one terminal state, however it dies.

    Regression for a conservation-law violation found by the fuzzer: an
    SRU fault flushed a reassembly (drop #1) while the packet's straggler
    cells were still crossing the fabric; the stragglers re-opened the
    reassembly, whose timeout dropped the same packet a second time,
    leaving offered - delivered - dropped negative.
    """

    def test_flush_then_straggler_timeout_counts_one_drop(self):
        r = make_router()
        pkt = send(r, src=0, dst=1, size=9000)  # segments into many cells
        # Let the first cells land at LC1, then kill its SRU mid-flight.
        r.run(until=6e-6)
        assert r.reassembly[1].occupancy == 1  # partially reassembled
        r.inject_fault(1, ComponentKind.SRU)
        assert r.reassembly[1].flushed == 1  # partial packet destroyed
        r.run(until=0.05)  # past the reassembly timeout
        s = r.stats
        assert pkt.terminated
        assert s.offered - s.delivered - s.dropped == 0
        assert s.dropped == 1

    def test_drop_then_deliver_is_ignored(self):
        r = make_router()
        pkt = send(r)
        r._drop(pkt, DropReason.MID_FLIGHT_FAULT)
        r._deliver(pkt, 1)
        r._drop(pkt, DropReason.NO_ROUTE)
        assert r.stats.dropped == 1
        assert r.stats.delivered == 0
        assert pkt.delivered_at is None

"""EIB channel tests: CSMA/CD control lines and TDM data lines."""

import numpy as np
import pytest

from repro.router.arbitration import DistributedArbiter
from repro.router.bandwidth import EIBBandwidthAllocator
from repro.router.bus import EIB, ControlChannel, DataChannel
from repro.router.packets import ControlKind, ControlPacket
from repro.sim import Engine


def cp(kind=ControlKind.REQ_D, init=0, **kw):
    return ControlPacket(kind=kind, init_lc=init, **kw)


def make_control(eng=None):
    eng = eng or Engine()
    return eng, ControlChannel(eng, np.random.default_rng(0))


class TestControlChannel:
    def test_broadcast_reaches_everyone_but_sender(self):
        eng, chan = make_control()
        got = {1: [], 2: [], 0: []}
        for lc in got:
            chan.attach(lc, lambda p, lc=lc: got[lc].append(p))
        chan.broadcast(cp(init=0), sender_lc=0)
        eng.run()
        assert len(got[1]) == 1 and len(got[2]) == 1
        assert got[0] == []

    def test_busy_medium_defers(self):
        eng, chan = make_control()
        order = []
        chan.attach(9, lambda p: order.append(p.init_lc))
        chan.broadcast(cp(init=0), 0)
        chan.broadcast(cp(init=1), 1)  # same instant: collision/defer path
        eng.run()
        assert sorted(order) == [0, 1]  # both eventually delivered
        assert chan.collisions + chan.deferrals >= 1

    def test_collision_detected_within_window(self):
        eng, chan = make_control()
        got = []
        chan.attach(9, lambda p: got.append(p.init_lc))
        chan.broadcast(cp(init=0), 0)
        # Second sender starts inside the (backplane-scale) vulnerability window.
        eng.schedule(2e-9, lambda: chan.broadcast(cp(init=1), 1))
        eng.run()
        assert chan.collisions >= 1
        assert sorted(got) == [0, 1]  # retries succeed

    def test_dead_bus_drops_silently(self):
        eng, chan = make_control()
        got = []
        chan.attach(1, lambda p: got.append(p))
        chan.healthy = False
        chan.broadcast(cp(init=0), 0)
        eng.run()
        assert got == []

    def test_sent_counter(self):
        eng, chan = make_control()
        chan.attach(1, lambda p: None)
        chan.broadcast(cp(init=0), 0)
        eng.run()
        assert chan.sent == 1


def make_data(n=4, capacity=20e9):
    eng = Engine()
    arb = DistributedArbiter(list(range(n)))
    alloc = EIBBandwidthAllocator(capacity)
    return eng, DataChannel(eng, arb, alloc), arb, alloc


class TestDataChannel:
    def test_transfer_delivers(self):
        eng, data, _, _ = make_data()
        data.open_lp(0, 1e9)
        got = []
        assert data.enqueue(0, 1000, lambda: got.append(eng.now))
        eng.run()
        assert len(got) == 1
        assert data.transferred_packets == 1
        assert data.transferred_bytes == 1000

    def test_enqueue_without_lp_drops(self):
        eng, data, _, _ = make_data()
        assert not data.enqueue(0, 1000, lambda: None)
        assert data.dropped_packets == 1

    def test_two_lps_share_round_robin(self):
        eng, data, arb, _ = make_data()
        data.open_lp(0, 5e9)
        data.open_lp(1, 5e9)
        got = []
        for _ in range(3):
            data.enqueue(0, 1000, lambda: got.append(0))
            data.enqueue(1, 1000, lambda: got.append(1))
        eng.run()
        assert sorted(got) == [0, 0, 0, 1, 1, 1]
        # Interleaved service, not all of one then all of the other.
        assert got != [0, 0, 0, 1, 1, 1] and got != [1, 1, 1, 0, 0, 0]

    def test_buffer_limit_drops(self):
        eng = Engine()
        arb = DistributedArbiter([0, 1])
        alloc = EIBBandwidthAllocator(20e9)
        data = DataChannel(eng, arb, alloc, buffer_bytes=1500)
        data.open_lp(0, 1e9)
        assert data.enqueue(0, 1000, lambda: None)  # goes straight into service
        assert data.enqueue(0, 1000, lambda: None)  # buffered (1000 <= 1500)
        assert not data.enqueue(0, 1000, lambda: None)  # buffer would overflow
        assert data.dropped_packets == 1

    def test_pacing_respects_promise(self):
        """An oversubscribed LP is paced to its promise, not the line rate."""
        eng, data, _, alloc = make_data(capacity=1e9)
        data.open_lp(0, 2e9)  # promise capped at 1 Gbps
        done = []
        n_pkts, size = 10, 125_000  # 1 Mb each -> 1 ms at promise
        for _ in range(n_pkts):
            data.enqueue(0, size, lambda: done.append(eng.now))
        eng.run()
        assert len(done) == n_pkts
        # 10 Mb at 1 Gbps promise needs >= ~9 ms (first packet unpaced).
        assert done[-1] >= 8e-3

    def test_close_lp_waits_for_drain(self):
        eng, data, arb, _ = make_data()
        data.open_lp(0, 1e9)
        closed = []
        data.enqueue(0, 1000, lambda: None)
        data.close_lp(0, on_closed=lambda: closed.append(eng.now))
        assert not closed  # still draining
        eng.run()
        assert closed
        assert arb.beta == 0

    def test_enqueue_after_close_drops(self):
        eng, data, _, _ = make_data()
        data.open_lp(0, 1e9)
        data.close_lp(0)
        assert not data.enqueue(0, 100, lambda: None)

    def test_reopen_while_draining(self):
        eng, data, _, _ = make_data()
        data.open_lp(0, 1e9)
        data.enqueue(0, 1000, lambda: None)
        data.close_lp(0)
        data.open_lp(0, 2e9)  # reopen cancels the close
        assert data.enqueue(0, 1000, lambda: None)
        eng.run()
        assert data.has_lp(0)

    def test_fail_drops_buffers_and_lps(self):
        eng, data, arb, _ = make_data()
        data.open_lp(0, 1e9)
        data.enqueue(0, 1000, lambda: None)
        data.fail()
        assert data.dropped_packets >= 1
        assert arb.beta == 0
        assert not data.healthy
        data.repair()
        assert data.healthy

    def test_open_lp_on_dead_bus_rejected(self):
        eng, data, _, _ = make_data()
        data.fail()
        with pytest.raises(RuntimeError, match="failed EIB"):
            data.open_lp(0, 1e9)


class TestEIBFacade:
    def test_fail_and_repair(self):
        eib = EIB(Engine(), [0, 1, 2], np.random.default_rng(0))
        assert eib.healthy
        eib.fail()
        assert not eib.healthy
        eib.repair()
        assert eib.healthy

"""Routing table / LPM / route processor tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.router.routing import (
    RoutePrefix,
    RouteProcessor,
    RoutingTable,
    format_ipv4,
    ipv4,
)


class TestAddressing:
    def test_parse_roundtrip(self):
        for dotted in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "192.168.1.77"):
            assert format_ipv4(ipv4(dotted)) == dotted

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            ipv4("10.0.0")
        with pytest.raises(ValueError):
            ipv4("10.0.0.256")
        with pytest.raises(ValueError):
            format_ipv4(-1)


class TestRoutePrefix:
    def test_host_bits_rejected(self):
        with pytest.raises(ValueError, match="host bits"):
            RoutePrefix(ipv4("10.0.0.1"), 16, 0)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            RoutePrefix(0, 33, 0)

    def test_matches(self):
        r = RoutePrefix(ipv4("10.1.0.0"), 16, 3)
        assert r.matches(ipv4("10.1.2.3"))
        assert not r.matches(ipv4("10.2.0.1"))

    def test_default_route_matches_everything(self):
        r = RoutePrefix(0, 0, 1)
        assert r.matches(0) and r.matches(2**32 - 1)


class TestRoutingTable:
    def make_table(self):
        t = RoutingTable()
        t.insert(RoutePrefix(ipv4("10.0.0.0"), 8, 1))
        t.insert(RoutePrefix(ipv4("10.1.0.0"), 16, 2))
        t.insert(RoutePrefix(ipv4("10.1.2.0"), 24, 3))
        return t

    def test_longest_prefix_wins(self):
        t = self.make_table()
        assert t.lookup(ipv4("10.1.2.9")) == 3
        assert t.lookup(ipv4("10.1.9.9")) == 2
        assert t.lookup(ipv4("10.9.9.9")) == 1

    def test_no_match(self):
        assert self.make_table().lookup(ipv4("11.0.0.1")) is None

    def test_default_route_fallback(self):
        t = self.make_table()
        t.insert(RoutePrefix(0, 0, 9))
        assert t.lookup(ipv4("11.0.0.1")) == 9
        assert t.lookup(ipv4("10.1.2.3")) == 3  # still longest-prefix

    def test_replace_route(self):
        t = self.make_table()
        t.insert(RoutePrefix(ipv4("10.1.0.0"), 16, 7))
        assert t.lookup(ipv4("10.1.9.9")) == 7
        assert len(t) == 3

    def test_remove(self):
        t = self.make_table()
        assert t.remove(ipv4("10.1.0.0"), 16)
        assert t.lookup(ipv4("10.1.9.9")) == 1  # falls back to the /8
        assert not t.remove(ipv4("10.1.0.0"), 16)  # second withdraw is a no-op

    def test_lookup_out_of_range(self):
        with pytest.raises(ValueError):
            self.make_table().lookup(2**32)

    def test_routes_listing(self):
        routes = self.make_table().routes()
        assert len(routes) == 3
        assert {r.next_hop_lc for r in routes} == {1, 2, 3}

    @settings(max_examples=60, deadline=None)
    @given(
        routes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=0, max_value=32),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=20,
        ),
        addr=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_trie_matches_linear_scan(self, routes, addr):
        """Property: the trie LPM equals the brute-force oracle."""
        t = RoutingTable()
        for prefix, length, hop in routes:
            mask = ((1 << length) - 1) << (32 - length) if length else 0
            t.insert(RoutePrefix(prefix & mask, length, hop))
        assert t.lookup(addr) == t.lookup_linear(addr)


class TestRouteProcessor:
    def test_distribute_copies_are_independent(self):
        rp = RouteProcessor()
        rp.announce(RoutePrefix(ipv4("10.0.0.0"), 8, 0))
        copy = rp.distribute()
        rp.announce(RoutePrefix(ipv4("11.0.0.0"), 8, 1))
        # The earlier copy is stale until redistributed.
        assert copy.lookup(ipv4("11.0.0.1")) is None
        assert rp.distribute().lookup(ipv4("11.0.0.1")) == 1

    def test_version_bumps(self):
        rp = RouteProcessor()
        v0 = rp.version
        rp.announce(RoutePrefix(ipv4("10.0.0.0"), 8, 0))
        assert rp.version == v0 + 1
        rp.withdraw(ipv4("10.0.0.0"), 8)
        assert rp.version == v0 + 2
        rp.withdraw(ipv4("10.0.0.0"), 8)  # absent: no bump
        assert rp.version == v0 + 2

    def test_full_mesh_topology(self):
        rp = RouteProcessor()
        rp.default_full_mesh(4)
        table = rp.distribute()
        for lc in range(4):
            addr = ipv4("10.0.0.0") + (lc << 16) + 5
            assert table.lookup(addr) == lc

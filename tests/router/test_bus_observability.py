"""EIB observability: collision/backoff counters and drop-reason accounting.

Drives the control channel through a forced-collision scenario (two
stations starting at the same instant sit inside the CSMA/CD
vulnerability window) and the data channel through each drop path, then
checks that the metrics registry and the tracer saw what the channel's
own statistics saw.
"""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.trace import Tracer, tracing
from repro.router.arbitration import DistributedArbiter
from repro.router.bandwidth import EIBBandwidthAllocator
from repro.router.bus import ControlChannel, DataChannel
from repro.router.packets import ControlKind, ControlPacket
from repro.router.stats import RouterStats
from repro.sim import Engine


def force_collision(engine, chan, n_senders=2):
    """Schedule ``n_senders`` broadcasts at the same instant."""
    delivered = []
    chan.attach(99, lambda p: delivered.append(p.init_lc))
    for lc in range(n_senders):
        pkt = ControlPacket(kind=ControlKind.REQ_D, init_lc=lc, data_rate=1.0)
        engine.schedule(0.0, lambda p=pkt, s=lc: chan.broadcast(p, s))
    engine.run()
    return delivered


class TestForcedCollision:
    def test_collision_and_backoff_counters(self):
        engine = Engine()
        chan = ControlChannel(engine, np.random.default_rng(0))
        registry = MetricsRegistry()
        with collecting(registry), tracing(Tracer()) as tracer:
            delivered = force_collision(engine, chan)

        # Both packets eventually arrive despite the collision.
        assert sorted(delivered) == [0, 1]
        assert chan.collisions >= 1
        assert registry.counter("bus.ctl.collisions").value == chan.collisions
        assert registry.counter("bus.ctl.sent").value == chan.sent == 2
        assert registry.counter("bus.ctl.sent.REQ_D").value == 2

        kinds = [e.kind for e in tracer.events]
        assert kinds.count("bus.ctl.collision") == chan.collisions
        # A collision aborts both stations; each retry logs a backoff.
        backoffs = [e for e in tracer.events if e.kind == "bus.ctl.backoff"]
        assert len(backoffs) >= 2
        assert all(e.data["wait_s"] >= 0.0 for e in backoffs)
        collision = next(e for e in tracer.events if e.kind == "bus.ctl.collision")
        assert {collision.data["sender_lc"], collision.data["other_lc"]} == {0, 1}

    def test_untraced_run_behaves_identically(self):
        # The hooks must not perturb the RNG stream or the schedule.
        def run():
            engine = Engine()
            chan = ControlChannel(engine, np.random.default_rng(0))
            force_collision(engine, chan)
            return engine.now, chan.sent, chan.collisions

        bare = run()
        with collecting(MetricsRegistry()), tracing(Tracer()):
            hooked = run()
        assert hooked == bare


class TestDropReasons:
    def make_data(self, engine, capacity=8e9, **kw):
        arb = DistributedArbiter([0, 1, 2])
        return DataChannel(engine, arb, EIBBandwidthAllocator(capacity), **kw)

    def test_no_lp_drop_reason(self):
        engine = Engine()
        data = self.make_data(engine)
        registry = MetricsRegistry()
        with collecting(registry), tracing(Tracer()) as tracer:
            assert not data.enqueue(0, 1000, lambda: None)
        assert data.dropped_packets == 1
        assert registry.counter("bus.data.dropped").value == 1
        assert registry.counter("bus.data.dropped.no_lp").value == 1
        drop = next(e for e in tracer.events if e.kind == "bus.data.drop")
        assert drop.data == {"lc": 0, "size_bytes": 1000, "reason": "no_lp"}

    def test_buffer_full_drop_reason(self):
        engine = Engine()
        data = self.make_data(engine, buffer_bytes=1500)
        data.open_lp(0, 1e9)
        registry = MetricsRegistry()
        with collecting(registry):
            assert not data.enqueue(0, 2000, lambda: None)
        assert registry.counter("bus.data.dropped.buffer_full").value == 1

    def test_unhealthy_drop_reason(self):
        engine = Engine()
        data = self.make_data(engine)
        data.open_lp(0, 1e9)
        data.healthy = False
        registry = MetricsRegistry()
        with collecting(registry):
            assert not data.enqueue(0, 1000, lambda: None)
        assert registry.counter("bus.data.dropped.unhealthy").value == 1


class TestRouterStatsDropAccounting:
    def test_drop_reasons_sum_to_dropped(self):
        s = RouterStats()
        for reason in ("no_route", "no_route", "egress_down", "eib_drop"):
            s.drop(reason)
        assert s.dropped == 4
        assert sum(s.drops.values()) == s.dropped
        assert s.drops == {"no_route": 2, "egress_down": 1, "eib_drop": 1}

    def test_summary_lists_every_reason(self):
        s = RouterStats()
        s.offered = 3
        s.drop("no_route")
        s.drop("eib_drop")
        text = s.summary()
        assert "no_route" in text and "eib_drop" in text

    def test_summary_min_latency_zero_when_nothing_delivered(self):
        # Regression: an empty accumulator used to render min = inf.
        text = RouterStats().summary()
        assert "inf" not in text

    def test_merge_folds_drops_and_latency(self):
        a, b = RouterStats(), RouterStats()
        a.drop("x")
        a.latency.add(1e-6)
        b.drop("x")
        b.drop("y")
        b.latency.add(3e-6)
        a.merge(b)
        assert a.drops == {"x": 2, "y": 1}
        assert a.latency.count == 2
        assert a.latency.mean == pytest.approx(2e-6)

"""Fabric-card failure behaviour through the assembled router."""

import pytest

from repro.router import Router, RouterConfig
from repro.traffic import wire_uniform_load


class TestFabricSparing:
    def test_single_card_failure_transparent(self):
        """One card failure is absorbed by the spare: no loss, full rate --
        the redundancy assumption behind the paper's Case 1."""
        router = Router(RouterConfig(n_linecards=4, seed=8))
        wire_uniform_load(router, 0.3)
        router.run(until=0.001)
        router.fail_fabric_card(0)
        assert router.fabric.active_fraction == 1.0
        router.run(until=0.004)
        assert router.stats.dropped == 0
        assert router.stats.delivery_ratio > 0.99

    def test_deep_fabric_loss_slows_but_delivers(self):
        router = Router(RouterConfig(n_linecards=4, seed=8))
        wire_uniform_load(router, 0.15)
        router.run(until=0.001)
        for card in range(3):
            router.fail_fabric_card(card)
        assert router.fabric.active_fraction == pytest.approx(0.5)
        router.run(until=0.004)
        # Degraded but operational: packets still flow.
        assert router.stats.delivered > 0

    def test_total_fabric_loss_drops(self):
        router = Router(RouterConfig(n_linecards=4, seed=8))
        wire_uniform_load(router, 0.2)
        router.run(until=0.001)
        for card in range(5):
            router.fail_fabric_card(card)
        assert not router.fabric.operational
        before = router.stats.drops.get("fabric_down", 0)
        router.run(until=0.003)
        assert router.stats.drops["fabric_down"] > before

    def test_repair_restores_capacity(self):
        router = Router(RouterConfig(n_linecards=4, seed=8))
        for card in range(2):
            router.fail_fabric_card(card)
        assert router.fabric.active_fraction < 1.0
        router.repair_fabric_card(0)
        assert router.fabric.active_fraction == 1.0

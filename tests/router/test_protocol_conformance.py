"""EIB protocol conformance: the exact message sequences of Section 4.

Taps the control channel of a small router and asserts the packet
sequences the paper prescribes for each communication pattern:

* forward path:  REQ_D (broadcast) -> REP_D (winner) -> data -> REL_D
* reverse path:  REQ_D (directed) -> REP_D (from the faulty LC)
* lookup:        REQ_L -> REP_L, entirely over the control lines
* stand-down:    losing candidates emit no REP_D after hearing the winner
"""


from repro.router import ComponentKind, Router, RouterConfig
from repro.router.packets import ControlKind, Packet, Protocol
from repro.router.routing import ipv4


class ControlTap:
    """Records every delivered control packet in order."""

    def __init__(self, router: Router) -> None:
        self.log: list[tuple[float, ControlKind, int, int | None]] = []
        control = router.eib.control
        original = control._deliver

        def spy(packet, sender_lc):
            self.log.append(
                (router.engine.now, packet.kind, sender_lc, packet.rec_lc)
            )
            original(packet, sender_lc)

        control._deliver = spy

    def kinds(self) -> list[ControlKind]:
        return [kind for _, kind, _, _ in self.log]

    def of_kind(self, kind: ControlKind):
        return [entry for entry in self.log if entry[1] is kind]


def make_router(n=4, **kw):
    return Router(RouterConfig(n_linecards=n, seed=13, **kw))


def send(router, src=0, dst=1, size=400):
    packet = Packet(
        src_lc=src,
        dst_lc=dst,
        dst_addr=ipv4("10.0.0.0") + (dst << 16) + 9,
        size_bytes=size,
        protocol=router.linecards[src].protocol,
        created_at=router.engine.now,
    )
    router.inject(packet)
    return packet


class TestForwardPath:
    def test_req_rep_data_sequence(self):
        router = make_router()
        tap = ControlTap(router)
        router.set_offered_load(0, 1e9)
        router.inject_fault(0, ComponentKind.SRU)
        send(router, src=0, dst=1)
        router.run(until=0.002)
        kinds = tap.kinds()
        assert kinds[0] is ControlKind.REQ_D
        assert ControlKind.REP_D in kinds
        assert kinds.index(ControlKind.REQ_D) < kinds.index(ControlKind.REP_D)
        # The solicitation is a broadcast (no addressed receiver).
        assert tap.of_kind(ControlKind.REQ_D)[0][3] is None

    def test_exactly_one_winner_replies(self):
        """All three healthy candidates could cover; the first REP_D on the
        wire stands the others down -- exactly one reply appears."""
        router = make_router(n=6)
        tap = ControlTap(router)
        router.set_offered_load(0, 1e9)
        router.inject_fault(0, ComponentKind.SRU)
        send(router, src=0, dst=1)
        router.run(until=0.002)
        assert len(tap.of_kind(ControlKind.REP_D)) == 1

    def test_rel_d_on_repair(self):
        router = make_router()
        tap = ControlTap(router)
        router.set_offered_load(0, 1e9)
        router.inject_fault(0, ComponentKind.SRU)
        send(router, src=0, dst=1)
        router.run(until=0.002)
        router.repair_fault(0, ComponentKind.SRU)
        router.run(until=0.003)
        rel = tap.of_kind(ControlKind.REL_D)
        assert len(rel) == 1
        assert rel[0][2] == 0  # released by the (formerly) faulty LC_init

    def test_no_control_traffic_without_faults(self):
        """"The EIB is never invoked if no traffic flow encounters a
        failure" (Section 3.2)."""
        router = make_router()
        tap = ControlTap(router)
        send(router, src=0, dst=1)
        router.run(until=0.002)
        assert tap.log == []


class TestReversePath:
    def test_directed_req_answered_by_target(self):
        router = make_router()
        tap = ControlTap(router)
        router.set_offered_load(0, 1e9)
        router.inject_fault(1, ComponentKind.SRU)  # faulty destination
        send(router, src=0, dst=1)
        router.run(until=0.002)
        req = tap.of_kind(ControlKind.REQ_D)
        rep = tap.of_kind(ControlKind.REP_D)
        assert req and rep
        assert req[0][3] == 1  # addressed at the faulty LC_out
        assert rep[0][2] == 1  # answered by the faulty LC_out itself


class TestLookupService:
    def test_req_l_rep_l_only(self):
        """The lookup service runs entirely over the control lines: no
        REQ_D/REP_D, no data-line logical path."""
        router = make_router()
        tap = ControlTap(router)
        router.inject_fault(0, ComponentKind.LFE)
        send(router, src=0, dst=2)
        router.run(until=0.002)
        kinds = set(tap.kinds())
        assert ControlKind.REQ_L in kinds
        assert ControlKind.REP_L in kinds
        assert ControlKind.REQ_D not in kinds
        assert router.eib.arbiter.beta == 0  # no LP was ever established

    def test_one_reply_per_lookup(self):
        router = make_router(n=6)
        tap = ControlTap(router)
        router.inject_fault(0, ComponentKind.LFE)
        send(router, src=0, dst=2)
        router.run(until=0.002)
        assert len(tap.of_kind(ControlKind.REQ_L)) == 1
        assert len(tap.of_kind(ControlKind.REP_L)) == 1


class TestProtocolMatching:
    def test_wrong_protocol_candidates_stay_silent(self):
        """For a PDLU fault only same-protocol LCs may reply (Section 3.1);
        with no protocol peer present, no REP_D ever appears."""
        router = make_router(
            n=4,
            protocols=(
                Protocol.ETHERNET,
                Protocol.SONET_POS,
                Protocol.ATM,
                Protocol.FRAME_RELAY,
            ),
        )
        tap = ControlTap(router)
        router.set_offered_load(0, 1e9)
        router.inject_fault(0, ComponentKind.PDLU)
        send(router, src=0, dst=1)
        router.run(until=0.002)
        assert tap.of_kind(ControlKind.REQ_D)  # solicited
        assert not tap.of_kind(ControlKind.REP_D)  # nobody qualified
        assert router.stats.drops["no_coverage"] >= 1

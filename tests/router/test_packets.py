"""Packet / cell / control-packet tests."""

import pytest

from repro.router.packets import (
    CELL_PAYLOAD_BYTES,
    Cell,
    ControlKind,
    ControlPacket,
    Packet,
    Protocol,
    segment,
)


def make_packet(size=500, src=0, dst=1):
    return Packet(
        src_lc=src,
        dst_lc=dst,
        dst_addr=0x0A000001,
        size_bytes=size,
        protocol=Protocol.ETHERNET,
        created_at=0.0,
    )


class TestPacket:
    def test_ids_unique(self):
        assert make_packet().pkt_id != make_packet().pkt_id

    def test_latency_none_in_flight(self):
        assert make_packet().latency is None

    def test_latency_after_delivery(self):
        p = make_packet()
        p.delivered_at = 1.5
        assert p.latency == pytest.approx(1.5)

    def test_hop_recording(self):
        p = make_packet()
        p.hop("a")
        p.hop("b")
        assert p.path == ["a", "b"]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            make_packet(size=0)

    def test_invalid_addr_rejected(self):
        with pytest.raises(ValueError, match="IPv4"):
            Packet(0, 1, 2**32, 100, Protocol.ETHERNET, 0.0)


class TestSegmentation:
    def test_cell_count_ceiling(self):
        p = make_packet(size=100)
        cells = segment(p)
        assert len(cells) == -(-100 // CELL_PAYLOAD_BYTES)

    def test_payload_conservation(self):
        p = make_packet(size=1337)
        cells = segment(p)
        assert sum(c.payload_bytes for c in cells) == 1337

    def test_exact_multiple(self):
        p = make_packet(size=CELL_PAYLOAD_BYTES * 3)
        cells = segment(p)
        assert len(cells) == 3
        assert all(c.payload_bytes == CELL_PAYLOAD_BYTES for c in cells)

    def test_sequence_numbers(self):
        cells = segment(make_packet(size=200))
        assert [c.seq for c in cells] == list(range(len(cells)))
        assert all(c.total == len(cells) for c in cells)

    def test_dst_override(self):
        cells = segment(make_packet(dst=1), dst_lc=4)
        assert all(c.dst_lc == 4 for c in cells)

    def test_single_byte_packet(self):
        cells = segment(make_packet(size=1))
        assert len(cells) == 1
        assert cells[0].payload_bytes == 1


class TestCellValidation:
    def test_seq_out_of_range(self):
        with pytest.raises(ValueError, match="seq"):
            Cell(pkt_id=1, seq=3, total=3, payload_bytes=10, dst_lc=0)

    def test_payload_bounds(self):
        with pytest.raises(ValueError, match="payload"):
            Cell(pkt_id=1, seq=0, total=1, payload_bytes=0, dst_lc=0)
        with pytest.raises(ValueError, match="payload"):
            Cell(pkt_id=1, seq=0, total=1, payload_bytes=CELL_PAYLOAD_BYTES + 1, dst_lc=0)


class TestControlPackets:
    def test_req_l_requires_address(self):
        with pytest.raises(ValueError, match="REQ_L"):
            ControlPacket(kind=ControlKind.REQ_L, init_lc=0)

    def test_rep_l_requires_result(self):
        with pytest.raises(ValueError, match="REP_L"):
            ControlPacket(kind=ControlKind.REP_L, init_lc=0)

    def test_rel_d_requires_lp(self):
        with pytest.raises(ValueError, match="REL_D"):
            ControlPacket(kind=ControlKind.REL_D, init_lc=0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            ControlPacket(kind=ControlKind.REQ_D, init_lc=0, data_rate=-1.0)

    def test_valid_solicitation(self):
        cp = ControlPacket(
            kind=ControlKind.REQ_D,
            init_lc=2,
            data_rate=1e9,
            protocol=Protocol.ATM,
        )
        assert cp.rec_lc is None  # broadcast
        assert cp.SIZE_BYTES == 32

"""Switching-fabric tests: transfer, queueing, card sparing."""

import pytest

from repro.router.fabric import SwitchFabric
from repro.router.packets import Cell
from repro.sim import Engine


def cell(dst=1, pkt=1, seq=0, total=1):
    return Cell(pkt_id=pkt, seq=seq, total=total, payload_bytes=48, dst_lc=dst)


class TestTransfer:
    def test_cell_delivered_after_serialization(self):
        eng = Engine()
        fabric = SwitchFabric(eng, 4, port_rate_cells_per_s=1e6)
        got = []
        assert fabric.transfer(cell(), 1, lambda c: got.append((eng.now, c)))
        eng.run()
        assert len(got) == 1
        assert got[0][0] == pytest.approx(1e-6)

    def test_fifo_order_per_port(self):
        eng = Engine()
        fabric = SwitchFabric(eng, 4)
        got = []
        for seq in range(3):
            fabric.transfer(cell(seq=seq, total=3), 1, lambda c: got.append(c.seq))
        eng.run()
        assert got == [0, 1, 2]

    def test_ports_drain_independently(self):
        eng = Engine()
        fabric = SwitchFabric(eng, 4, port_rate_cells_per_s=1e6)
        times = {}
        fabric.transfer(cell(dst=1), 1, lambda c: times.setdefault(1, eng.now))
        fabric.transfer(cell(dst=2), 2, lambda c: times.setdefault(2, eng.now))
        eng.run()
        # No cross-port queueing: both arrive after one serialization time.
        assert times[1] == pytest.approx(times[2])

    def test_queue_depth(self):
        eng = Engine()
        fabric = SwitchFabric(eng, 4)
        for _ in range(5):
            fabric.transfer(cell(), 1, lambda c: None)
        assert fabric.queue_depth(1) >= 3  # one in service, rest queued

    def test_invalid_port_rejected(self):
        eng = Engine()
        fabric = SwitchFabric(eng, 4)
        with pytest.raises(ValueError, match="port"):
            fabric.transfer(cell(), 9, lambda c: None)

    def test_delivered_counter(self):
        eng = Engine()
        fabric = SwitchFabric(eng, 4)
        fabric.transfer(cell(), 2, lambda c: None)
        eng.run()
        assert fabric.delivered_cells(2) == 1


class TestCardSparing:
    def test_initial_complement(self):
        fabric = SwitchFabric(Engine(), 4)
        active = [c for c in fabric.cards if c.active]
        assert len(active) == 4
        assert len(fabric.cards) == 5
        assert fabric.active_fraction == 1.0

    def test_spare_swaps_in_on_failure(self):
        fabric = SwitchFabric(Engine(), 4)
        fabric.fail_card(0)
        assert fabric.active_fraction == 1.0  # 1:4 redundancy absorbed it
        assert fabric.swaps == 1

    def test_second_failure_degrades(self):
        fabric = SwitchFabric(Engine(), 4)
        fabric.fail_card(0)
        fabric.fail_card(1)
        assert fabric.active_fraction == pytest.approx(0.75)
        assert fabric.operational

    def test_total_loss(self):
        eng = Engine()
        fabric = SwitchFabric(eng, 4)
        for i in range(5):
            fabric.fail_card(i)
        assert not fabric.operational
        assert not fabric.transfer(cell(), 1, lambda c: None)

    def test_repair_returns_as_standby(self):
        fabric = SwitchFabric(Engine(), 4)
        fabric.fail_card(0)  # spare replaces it
        fabric.repair_card(0)
        # Complement already full: the repaired card waits as standby.
        active = [c.card_id for c in fabric.cards if c.active]
        assert len(active) == 4
        assert 0 not in active

    def test_repair_promotes_when_capacity_short(self):
        fabric = SwitchFabric(Engine(), 4)
        fabric.fail_card(0)
        fabric.fail_card(1)  # degraded to 3/4
        fabric.repair_card(0)
        assert fabric.active_fraction == 1.0

    def test_degraded_rate_slows_delivery(self):
        eng = Engine()
        fabric = SwitchFabric(eng, 4, port_rate_cells_per_s=1e6)
        fabric.fail_card(0)
        fabric.fail_card(1)  # active fraction 0.75
        got = []
        fabric.transfer(cell(), 1, lambda c: got.append(eng.now))
        eng.run()
        assert got[0] == pytest.approx(1e-6 / 0.75)

    def test_invalid_complement_rejected(self):
        with pytest.raises(ValueError):
            SwitchFabric(Engine(), 4, n_active_cards=0)
        with pytest.raises(ValueError):
            SwitchFabric(Engine(), 0)

"""Switching-fabric tests: transfer, queueing, card sparing, drops."""

import pytest

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.router.fabric import CELL_DISPATCH_MODES, SwitchFabric
from repro.router.packets import Cell
from repro.sim import Engine


def cell(dst=1, pkt=1, seq=0, total=1):
    return Cell(pkt_id=pkt, seq=seq, total=total, payload_bytes=48, dst_lc=dst)


@pytest.fixture(params=CELL_DISPATCH_MODES)
def dispatch(request):
    return request.param


class TestTransfer:
    def test_cell_delivered_after_serialization(self, dispatch):
        eng = Engine()
        fabric = SwitchFabric(
            eng, 4, port_rate_cells_per_s=1e6, cell_dispatch=dispatch
        )
        got = []
        assert fabric.transfer(cell(), 1, lambda c: got.append((eng.now, c)))
        eng.run()
        assert len(got) == 1
        assert got[0][0] == pytest.approx(1e-6)

    def test_fifo_order_per_port(self, dispatch):
        eng = Engine()
        fabric = SwitchFabric(eng, 4, cell_dispatch=dispatch)
        got = []
        for seq in range(3):
            fabric.transfer(cell(seq=seq, total=3), 1, lambda c: got.append(c.seq))
        eng.run()
        assert got == [0, 1, 2]

    def test_ports_drain_independently(self, dispatch):
        eng = Engine()
        fabric = SwitchFabric(
            eng, 4, port_rate_cells_per_s=1e6, cell_dispatch=dispatch
        )
        times = {}
        fabric.transfer(cell(dst=1), 1, lambda c: times.setdefault(1, eng.now))
        fabric.transfer(cell(dst=2), 2, lambda c: times.setdefault(2, eng.now))
        eng.run()
        # No cross-port queueing: both arrive after one serialization time.
        assert times[1] == pytest.approx(times[2])

    def test_queue_depth(self, dispatch):
        eng = Engine()
        fabric = SwitchFabric(eng, 4, cell_dispatch=dispatch)
        for _ in range(5):
            fabric.transfer(cell(), 1, lambda c: None)
        assert fabric.queue_depth(1) >= 3  # one in service, rest queued

    def test_invalid_port_rejected(self, dispatch):
        eng = Engine()
        fabric = SwitchFabric(eng, 4, cell_dispatch=dispatch)
        with pytest.raises(ValueError, match="port"):
            fabric.transfer(cell(), 9, lambda c: None)

    def test_delivered_counter(self, dispatch):
        eng = Engine()
        fabric = SwitchFabric(eng, 4, cell_dispatch=dispatch)
        fabric.transfer(cell(), 2, lambda c: None)
        eng.run()
        assert fabric.delivered_cells(2) == 1

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(ValueError, match="cell_dispatch"):
            SwitchFabric(Engine(), 4, cell_dispatch="simd")


class TestTransferRun:
    def test_run_delivers_every_cell_in_order(self, dispatch):
        eng = Engine()
        fabric = SwitchFabric(
            eng, 4, port_rate_cells_per_s=1e6, cell_dispatch=dispatch
        )
        got = []
        cells = [cell(seq=s, total=4) for s in range(4)]
        assert fabric.transfer_run(cells, 1, lambda c: got.append((c.seq, eng.now)))
        eng.run()
        assert [s for s, _ in got] == [0, 1, 2, 3]
        assert [t for _, t in got] == pytest.approx(
            [1e-6, 2e-6, 3e-6, 4e-6]
        )

    def test_run_matches_per_cell_transfers(self, dispatch):
        def deliveries(use_run: bool):
            eng = Engine()
            fabric = SwitchFabric(
                eng, 4, port_rate_cells_per_s=1e6, cell_dispatch=dispatch
            )
            got = []
            cells = [cell(seq=s, total=3) for s in range(3)]
            if use_run:
                fabric.transfer_run(cells, 1, lambda c: got.append((c.seq, eng.now)))
            else:
                for c in cells:
                    fabric.transfer(c, 1, lambda c: got.append((c.seq, eng.now)))
            eng.run()
            return got

        assert deliveries(True) == deliveries(False)

    def test_empty_run_is_a_noop(self, dispatch):
        eng = Engine()
        fabric = SwitchFabric(eng, 4, cell_dispatch=dispatch)
        assert fabric.transfer_run([], 1, lambda c: None)
        assert fabric.queue_depth(1) == 0
        eng.run()
        assert fabric.delivered_cells(1) == 0

    def test_dead_fabric_refuses_run(self, dispatch):
        fabric = SwitchFabric(Engine(), 4, cell_dispatch=dispatch)
        for i in range(5):
            fabric.fail_card(i)
        assert not fabric.transfer_run([cell()], 1, lambda c: None)

    def test_out_of_range_port_rejected(self, dispatch):
        fabric = SwitchFabric(Engine(), 4, cell_dispatch=dispatch)
        for bad in (-1, 4):
            with pytest.raises(ValueError, match="port"):
                fabric.transfer_run([cell()], bad, lambda c: None)


class TestCardSparing:
    def test_initial_complement(self):
        fabric = SwitchFabric(Engine(), 4)
        active = [c for c in fabric.cards if c.active]
        assert len(active) == 4
        assert len(fabric.cards) == 5
        assert fabric.active_fraction == 1.0

    def test_spare_swaps_in_on_failure(self):
        fabric = SwitchFabric(Engine(), 4)
        fabric.fail_card(0)
        assert fabric.active_fraction == 1.0  # 1:4 redundancy absorbed it
        assert fabric.swaps == 1

    def test_second_failure_degrades(self):
        fabric = SwitchFabric(Engine(), 4)
        fabric.fail_card(0)
        fabric.fail_card(1)
        assert fabric.active_fraction == pytest.approx(0.75)
        assert fabric.operational

    def test_total_loss(self):
        eng = Engine()
        fabric = SwitchFabric(eng, 4)
        for i in range(5):
            fabric.fail_card(i)
        assert not fabric.operational
        assert not fabric.transfer(cell(), 1, lambda c: None)

    def test_repair_returns_as_standby(self):
        fabric = SwitchFabric(Engine(), 4)
        fabric.fail_card(0)  # spare replaces it
        fabric.repair_card(0)
        # Complement already full: the repaired card waits as standby.
        active = [c.card_id for c in fabric.cards if c.active]
        assert len(active) == 4
        assert 0 not in active

    def test_repair_promotes_when_capacity_short(self):
        fabric = SwitchFabric(Engine(), 4)
        fabric.fail_card(0)
        fabric.fail_card(1)  # degraded to 3/4
        fabric.repair_card(0)
        assert fabric.active_fraction == 1.0

    def test_degraded_rate_slows_delivery(self, dispatch):
        eng = Engine()
        fabric = SwitchFabric(
            eng, 4, port_rate_cells_per_s=1e6, cell_dispatch=dispatch
        )
        fabric.fail_card(0)
        fabric.fail_card(1)  # active fraction 0.75
        got = []
        fabric.transfer(cell(), 1, lambda c: got.append(eng.now))
        eng.run()
        assert got[0] == pytest.approx(1e-6 / 0.75)

    def test_invalid_complement_rejected(self):
        with pytest.raises(ValueError):
            SwitchFabric(Engine(), 4, n_active_cards=0)
        with pytest.raises(ValueError):
            SwitchFabric(Engine(), 0)


class TestSparingEdgeCases:
    def test_spare_promotion_is_lowest_id_first(self):
        # Two spares standing by (ids 2, 3): failing an active card must
        # promote the lowest-id healthy standby, not an arbitrary one.
        fabric = SwitchFabric(Engine(), 4, n_active_cards=2, n_spare_cards=2)
        assert [c.card_id for c in fabric.cards if c.active] == [0, 1]
        fabric.fail_card(0)
        assert [c.card_id for c in fabric.cards if c.active] == [1, 2]
        fabric.fail_card(1)
        assert [c.card_id for c in fabric.cards if c.active] == [2, 3]
        assert fabric.swaps == 2
        assert fabric.active_fraction == 1.0

    def test_repaired_card_stands_by_until_next_failure(self):
        fabric = SwitchFabric(Engine(), 4)
        fabric.fail_card(0)
        fabric.repair_card(0)  # complement full: card 0 waits as standby
        fabric.fail_card(1)
        # The standby (card 0) is the one promoted for the new failure.
        active = [c.card_id for c in fabric.cards if c.active]
        assert 0 in active and 1 not in active
        assert fabric.active_fraction == 1.0

    def test_active_fraction_clamped_at_one(self):
        # Force more healthy-active cards than the requirement (a state
        # no public transition produces): the fraction must clamp at 1.0
        # so the port rate never exceeds its nominal value.
        fabric = SwitchFabric(Engine(), 4)
        for card in fabric.cards:
            card.active = True  # all 5 of 4-required active
        assert fabric.active_fraction == 1.0

    def test_transfer_to_negative_port_rejected(self):
        fabric = SwitchFabric(Engine(), 4)
        with pytest.raises(ValueError, match="port"):
            fabric.transfer(cell(), -1, lambda c: None)


class TestDropAccounting:
    def _kill_all(self, fabric):
        for i in range(len(fabric.cards)):
            fabric.fail_card(i)

    def test_conservation_when_fabric_dies_mid_flight(self, dispatch):
        # 20 cells at 1 us each; the fabric dies at t=5.5 us.  The cell
        # in service still lands (t=6 us), the other 14 are dropped --
        # and every one of the 20 is accounted: delivered + dropped.
        eng = Engine()
        fabric = SwitchFabric(
            eng, 4, port_rate_cells_per_s=1e6, cell_dispatch=dispatch
        )
        got = []
        cells = [cell(seq=s, total=20) for s in range(20)]
        fabric.transfer_run(cells, 1, lambda c: got.append(eng.now))
        eng.schedule(5.5e-6, lambda: self._kill_all(fabric))
        eng.run()
        assert len(got) == 6
        assert got[-1] == pytest.approx(6e-6)
        assert fabric.delivered_cells(1) == 6
        assert fabric.dropped_cells(1) == 14
        assert fabric.delivered_cells(1) + fabric.dropped_cells(1) == 20
        assert fabric.queue_depth(1) == 0

    def test_drop_emits_metric_and_trace_event(self, dispatch):
        eng = Engine()
        fabric = SwitchFabric(
            eng, 4, port_rate_cells_per_s=1e6, cell_dispatch=dispatch
        )
        cells = [cell(seq=s, total=10) for s in range(10)]
        fabric.transfer_run(cells, 2, lambda c: None)
        eng.schedule(2.5e-6, lambda: self._kill_all(fabric))
        tracer = _trace.Tracer(path=None)
        with _metrics.collecting() as registry, _trace.tracing(tracer):
            eng.run()
        assert registry.counter("fabric.cells_dropped").value == 7
        drops = [ev for ev in tracer.events if ev.kind == "fabric.drop"]
        assert len(drops) == 1
        assert drops[0].data == {"port": 2, "cells": 7}
        assert drops[0].t == pytest.approx(3e-6)

    def test_new_transfers_refused_after_death(self, dispatch):
        eng = Engine()
        fabric = SwitchFabric(eng, 4, cell_dispatch=dispatch)
        fabric.transfer(cell(), 1, lambda c: None)
        self._kill_all(fabric)
        assert not fabric.transfer(cell(), 1, lambda c: None)
        eng.run()
        assert fabric.delivered_cells(1) + fabric.dropped_cells(1) == 1

"""SRU reassembly-buffer tests."""

import pytest

from repro.router.packets import Cell
from repro.router.reassembly import ReassemblyBuffer
from repro.sim import Engine


def cells_for(pkt_id, total, dst=1):
    return [
        Cell(pkt_id=pkt_id, seq=k, total=total, payload_bytes=48, dst_lc=dst)
        for k in range(total)
    ]


class TestCompletion:
    def test_completes_on_last_cell(self):
        eng = Engine()
        buf = ReassemblyBuffer(eng)
        done = []
        for cell in cells_for(1, 3):
            buf.add_cell(cell, lambda: done.append(1))
        assert done == [1]
        assert buf.completed == 1
        assert buf.occupancy == 0

    def test_single_cell_packet(self):
        eng = Engine()
        buf = ReassemblyBuffer(eng)
        done = []
        buf.add_cell(cells_for(7, 1)[0], lambda: done.append(7))
        assert done == [7]

    def test_interleaved_packets(self):
        eng = Engine()
        buf = ReassemblyBuffer(eng)
        done = []
        a = cells_for(1, 2)
        b = cells_for(2, 2)
        buf.add_cell(a[0], lambda: done.append("a"))
        buf.add_cell(b[0], lambda: done.append("b"))
        assert buf.occupancy == 2
        buf.add_cell(b[1], lambda: done.append("b"))
        buf.add_cell(a[1], lambda: done.append("a"))
        assert done == ["b", "a"]

    def test_pending_query(self):
        eng = Engine()
        buf = ReassemblyBuffer(eng)
        buf.add_cell(cells_for(5, 2)[0], lambda: None)
        assert buf.is_pending(5)
        assert not buf.is_pending(6)


class TestTimeout:
    def test_incomplete_reassembly_times_out(self):
        eng = Engine()
        buf = ReassemblyBuffer(eng, timeout_s=1e-3)
        aborted = []
        buf.add_cell(cells_for(1, 3)[0], lambda: None, aborted.append)
        eng.run(until=2e-3)
        assert aborted == ["timeout"]
        assert buf.timed_out == 1
        assert buf.occupancy == 0

    def test_completion_cancels_timeout(self):
        eng = Engine()
        buf = ReassemblyBuffer(eng, timeout_s=1e-3)
        aborted = []
        for cell in cells_for(1, 2):
            buf.add_cell(cell, lambda: None, aborted.append)
        eng.run(until=5e-3)
        assert aborted == []
        assert buf.timed_out == 0

    def test_late_cell_after_timeout_reopens(self):
        """A straggler cell after timeout starts a fresh (doomed) entry;
        it must not resurrect the completed count."""
        eng = Engine()
        buf = ReassemblyBuffer(eng, timeout_s=1e-3)
        cells = cells_for(1, 3)
        buf.add_cell(cells[0], lambda: None)
        eng.run(until=2e-3)  # timed out
        buf.add_cell(cells[1], lambda: None)
        assert buf.occupancy == 1
        assert buf.completed == 0

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            ReassemblyBuffer(Engine(), timeout_s=0.0)


class TestFlush:
    def test_flush_aborts_everything(self):
        eng = Engine()
        buf = ReassemblyBuffer(eng)
        aborted = []
        buf.add_cell(cells_for(1, 2)[0], lambda: None, aborted.append)
        buf.add_cell(cells_for(2, 2)[0], lambda: None, aborted.append)
        assert buf.flush() == 2
        assert aborted == ["flush", "flush"]
        assert buf.occupancy == 0
        assert buf.flushed == 2

    def test_flush_cancels_timeouts(self):
        eng = Engine()
        buf = ReassemblyBuffer(eng, timeout_s=1e-3)
        buf.add_cell(cells_for(1, 2)[0], lambda: None)
        buf.flush()
        eng.run(until=5e-3)
        assert buf.timed_out == 0  # timeout was cancelled by the flush

    def test_flush_empty_is_zero(self):
        assert ReassemblyBuffer(Engine()).flush() == 0

"""Stats accumulator tests."""

import pytest

from repro.router.stats import LatencyAccumulator, RouterStats


class TestLatencyAccumulator:
    def test_streaming_moments(self):
        acc = LatencyAccumulator()
        for v in (1.0, 2.0, 3.0):
            acc.add(v)
        assert acc.count == 3
        assert acc.mean == pytest.approx(2.0)
        assert acc.min_value == 1.0
        assert acc.max_value == 3.0

    def test_empty_mean_is_zero(self):
        assert LatencyAccumulator().mean == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyAccumulator().add(-1.0)

    def test_welford_variance_matches_two_pass(self):
        values = [1.5e-6, 2.5e-6, 9.0e-6, 4.0e-6, 0.5e-6]
        acc = LatencyAccumulator()
        for v in values:
            acc.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert acc.mean == pytest.approx(mean)
        assert acc.variance == pytest.approx(var)
        assert acc.stdev == pytest.approx(var**0.5)

    def test_variance_needs_two_samples(self):
        acc = LatencyAccumulator()
        assert acc.variance == 0.0 and acc.stdev == 0.0
        acc.add(1.0)
        assert acc.variance == 0.0

    def test_merge_equals_sequential(self):
        left, right, ref = (
            LatencyAccumulator(),
            LatencyAccumulator(),
            LatencyAccumulator(),
        )
        values = [3e-6, 1e-6, 4e-6, 1e-6, 5e-6, 9e-6]
        for v in values[:2]:
            left.add(v)
            ref.add(v)
        for v in values[2:]:
            right.add(v)
            ref.add(v)
        left.merge(right)
        assert left.count == ref.count
        assert left.mean == pytest.approx(ref.mean)
        assert left.variance == pytest.approx(ref.variance)
        assert left.min_value == ref.min_value
        assert left.max_value == ref.max_value

    def test_merge_with_empty_is_identity(self):
        acc = LatencyAccumulator()
        acc.add(2.0)
        acc.merge(LatencyAccumulator())
        assert acc.count == 1 and acc.mean == 2.0
        empty = LatencyAccumulator()
        empty.merge(acc)
        assert empty.count == 1 and empty.mean == 2.0

    def test_empty_minimum_is_zero_not_inf(self):
        acc = LatencyAccumulator()
        assert acc.minimum == 0.0 and acc.maximum == 0.0


class TestRouterStats:
    def test_delivery_ratio(self):
        s = RouterStats()
        s.offered = 10
        s.delivered = 7
        assert s.delivery_ratio == pytest.approx(0.7)

    def test_delivery_ratio_no_traffic(self):
        assert RouterStats().delivery_ratio == 1.0

    def test_drop_accounting(self):
        s = RouterStats()
        s.drop("x")
        s.drop("x")
        s.drop("y")
        assert s.dropped == 3
        assert s.drops["x"] == 2

    def test_summary_mentions_counts(self):
        s = RouterStats()
        s.offered = 5
        s.delivered = 4
        s.drop("no_route")
        text = s.summary()
        assert "offered" in text and "no_route" in text

    def test_summary_latency_mean_plus_minus_stdev(self):
        s = RouterStats()
        s.delivered = 2
        s.latency.add(2e-6)
        s.latency.add(4e-6)
        text = s.summary()
        assert "+/-" in text
        assert "3.00" in text  # mean in microseconds

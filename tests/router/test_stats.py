"""Stats accumulator tests."""

import pytest

from repro.router.stats import LatencyAccumulator, RouterStats


class TestLatencyAccumulator:
    def test_streaming_moments(self):
        acc = LatencyAccumulator()
        for v in (1.0, 2.0, 3.0):
            acc.add(v)
        assert acc.count == 3
        assert acc.mean == pytest.approx(2.0)
        assert acc.min_value == 1.0
        assert acc.max_value == 3.0

    def test_empty_mean_is_zero(self):
        assert LatencyAccumulator().mean == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyAccumulator().add(-1.0)


class TestRouterStats:
    def test_delivery_ratio(self):
        s = RouterStats()
        s.offered = 10
        s.delivered = 7
        assert s.delivery_ratio == pytest.approx(0.7)

    def test_delivery_ratio_no_traffic(self):
        assert RouterStats().delivery_ratio == 1.0

    def test_drop_accounting(self):
        s = RouterStats()
        s.drop("x")
        s.drop("x")
        s.drop("y")
        assert s.dropped == 3
        assert s.drops["x"] == 2

    def test_summary_mentions_counts(self):
        s = RouterStats()
        s.offered = 5
        s.delivered = 4
        s.drop("no_route")
        text = s.summary()
        assert "offered" in text and "no_route" in text

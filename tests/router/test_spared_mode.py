"""SPARED-mode tests: the explicit-redundancy baseline."""

import pytest

from repro.router import ComponentKind, Router, RouterConfig, RouterMode
from repro.router.packets import Protocol
from repro.traffic import wire_uniform_load


def make_spared(n=4, swap_delay=1e-3, spares=1, **kw):
    return Router(
        RouterConfig(
            n_linecards=n,
            mode=RouterMode.SPARED,
            spares_per_protocol=spares,
            spare_swap_delay_s=swap_delay,
            seed=21,
            **kw,
        )
    )


class TestSpareSwap:
    def test_fault_recovers_after_swap_delay(self):
        r = make_spared()
        wire_uniform_load(r, 0.3)
        r.run(until=0.001)
        r.inject_fault(0, ComponentKind.SRU)
        # During the swap window: LC down, packets drop.
        r.run(until=0.0015)
        assert r.stats.drops["bdr_ingress_lc_down"] > 0
        drops_mid = r.stats.dropped
        # After the swap completes, service resumes.
        r.run(until=0.004)
        assert r.linecards[0].datapath_healthy
        assert r.stats.delivered > 0
        # Drops stop growing once the spare is in.
        drops_end = r.stats.dropped
        r.run(until=0.006)
        assert r.stats.dropped - drops_end < (drops_mid + 1)

    def test_spare_pool_decrements(self):
        r = make_spared(spares=1)
        assert r.spares[Protocol.ETHERNET] == 1
        r.inject_fault(0, ComponentKind.SRU)
        assert r.spares[Protocol.ETHERNET] == 0

    def test_exhausted_pool_leaves_lc_down(self):
        r = make_spared(spares=1, swap_delay=1e-4)
        r.inject_fault(0, ComponentKind.SRU)
        r.run(until=0.001)  # first swap completes
        r.inject_fault(1, ComponentKind.SRU)  # pool now empty
        r.run(until=0.002)
        assert not r.linecards[1].datapath_healthy

    def test_restock_reenables_swap(self):
        r = make_spared(spares=0, swap_delay=1e-4)
        r.inject_fault(0, ComponentKind.SRU)
        r.run(until=0.001)
        assert not r.linecards[0].datapath_healthy  # no spare available
        r.restock_spare(Protocol.ETHERNET)
        r.inject_fault(1, ComponentKind.SRU)
        r.run(until=0.002)
        assert r.linecards[1].datapath_healthy  # second fault got the spare

    def test_piu_fault_not_swapped(self):
        """A PIU failure severs the external link; a standby card in the
        chassis cannot terminate the disconnected fiber."""
        r = make_spared()
        r.inject_fault(0, ComponentKind.PIU)
        r.run(until=0.01)
        assert not r.linecards[0].piu.healthy

    def test_restock_on_non_spared_rejected(self):
        r = Router(RouterConfig(n_linecards=4))
        with pytest.raises(RuntimeError):
            r.restock_spare(Protocol.ETHERNET)


class TestThreeWayComparison:
    def test_recovery_ordering(self):
        """DRA recovers fastest (coverage engages in microseconds), SPARED
        after the swap delay, BDR never."""
        results = {}
        for mode in (RouterMode.DRA, RouterMode.SPARED, RouterMode.BDR):
            r = Router(
                RouterConfig(
                    n_linecards=4,
                    mode=mode,
                    spare_swap_delay_s=1e-3,
                    seed=9,
                )
            )
            wire_uniform_load(r, 0.3)
            r.run(until=0.001)
            r.inject_fault(0, ComponentKind.SRU)
            r.run(until=0.005)
            results[mode] = r.stats.delivery_ratio
        assert results[RouterMode.DRA] > results[RouterMode.SPARED]
        assert results[RouterMode.SPARED] > results[RouterMode.BDR]

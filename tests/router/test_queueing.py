"""Queue-aware component service tests."""

import pytest

from repro.router import Router, RouterConfig
from repro.router.components import SRU, ServiceModel
from repro.traffic import wire_uniform_load


class TestServe:
    def test_idle_server_no_wait(self):
        sru = SRU(0, ServiceModel(overhead_s=1e-6, rate_bps=8e9))
        sojourn = sru.serve(1000, now=0.0)
        assert sojourn == pytest.approx(2e-6)  # 1us overhead + 1us wire

    def test_back_to_back_queues(self):
        sru = SRU(0, ServiceModel(overhead_s=1e-6, rate_bps=8e9))
        first = sru.serve(1000, now=0.0)
        second = sru.serve(1000, now=0.0)
        assert second == pytest.approx(first + 2e-6)

    def test_idle_gap_resets_queue(self):
        sru = SRU(0, ServiceModel(overhead_s=1e-6, rate_bps=8e9))
        sru.serve(1000, now=0.0)
        late = sru.serve(1000, now=1.0)
        assert late == pytest.approx(2e-6)

    def test_failed_unit_raises(self):
        sru = SRU(0)
        sru.fail()
        with pytest.raises(RuntimeError):
            sru.serve(100, now=0.0)

    def test_repair_clears_backlog(self):
        sru = SRU(0, ServiceModel(overhead_s=1e-6, rate_bps=8e9))
        for _ in range(100):
            sru.serve(1000, now=0.0)
        sru.fail()
        sru.repair()
        assert sru.serve(1000, now=0.0) == pytest.approx(2e-6)

    def test_busy_time_accumulates(self):
        sru = SRU(0, ServiceModel(overhead_s=1e-6, rate_bps=8e9))
        sru.serve(1000, now=0.0)
        sru.serve(1000, now=10.0)
        assert sru.busy_time == pytest.approx(4e-6)

    def test_utilization(self):
        sru = SRU(0, ServiceModel(overhead_s=1e-6, rate_bps=8e9))
        sru.serve(1000, now=0.0)
        assert sru.utilization(2e-6) == pytest.approx(1.0)
        assert sru.utilization(2e-5) == pytest.approx(0.1)
        assert sru.utilization(0.0) == 0.0


class TestLoadDependentLatency:
    def run_at(self, load: float) -> float:
        router = Router(RouterConfig(n_linecards=4, seed=3))
        wire_uniform_load(router, load)
        router.run(until=0.004)
        return router.stats.latency.mean

    def test_latency_grows_with_load(self):
        assert self.run_at(0.6) > self.run_at(0.1)

    def test_utilization_tracks_load(self):
        router = Router(RouterConfig(n_linecards=4, seed=3))
        wire_uniform_load(router, 0.5)
        router.run(until=0.004)
        # An ingress SRU sees its own 0.5 load plus egress work; the unit
        # must be visibly busy but not saturated.
        util = router.linecards[0].sru.utilization(router.engine.now)
        assert 0.2 < util < 1.0

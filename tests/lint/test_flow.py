"""Interprocedural (DRA5xx) pass: fixtures, determinism, CLI gate.

Every fixture materializes a *multi-file* ``src/repro/...`` tree under
``tmp_path`` -- the findings here genuinely cross module boundaries,
which is exactly what the per-file tier cannot see.  One known-bad and
one known-good tree per rule family, plus the suppression-interplay
policy tests (waive at the sink, never at the source), the call-graph
export contract, and the injected-violation CLI gates the CI job pins.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main
from repro.lint import GRAPH_SCHEMA_VERSION, lint_paths
from repro.lint.flow.rules5xx import FLOW_RULES
from repro.obs.metrics import MetricsRegistry, collecting


def _write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


@pytest.fixture
def flow_codes(tmp_path):
    """Write a multi-file tree, lint it, return the DRA5xx codes."""

    def run(files, **kwargs):
        _write_tree(tmp_path, files)
        report = lint_paths([str(tmp_path)], **kwargs)
        return [f.code for f in report.findings if f.code.startswith("DRA5")]

    return run


@pytest.fixture
def flow_report(tmp_path):
    def run(files, **kwargs):
        _write_tree(tmp_path, files)
        return lint_paths([str(tmp_path)], **kwargs)

    return run


# ---------------------------------------------------------------------------
# injected-violation trees, one per rule (the CI gate reuses these shapes)
# ---------------------------------------------------------------------------

BAD_DRA501 = {
    "src/repro/mc/consts.py": "SEED = 1234\n",
    "src/repro/mc/driver.py": """
        from numpy.random import default_rng

        from repro.mc.consts import SEED

        def estimate(n):
            rng = default_rng(SEED)
            return rng.random(n).mean()
    """,
}

BAD_DRA501_CLOSURE = {
    "src/repro/mc/pool.py": """
        from numpy.random import default_rng

        from repro.runtime.executor import parallel_map

        def sweep(points, seed):
            rng = default_rng(seed)

            def worker(p):
                return p + rng.random()

            return parallel_map(worker, points)
    """,
}

BAD_DRA502 = {
    "src/repro/mc/state.py": "RESULTS = {}\n",
    "src/repro/mc/work.py": """
        from repro.mc.state import RESULTS
        from repro.runtime.executor import parallel_map

        def _task(x):
            RESULTS[x] = x * x
            return RESULTS[x]

        def run(items):
            return parallel_map(_task, items)
    """,
}

BAD_DRA503 = {
    "src/repro/mc/plan.py": """
        def open_faults(plan):
            return plan.keys()
    """,
    "src/repro/mc/sweep.py": """
        from repro.mc.plan import open_faults
        from repro.runtime.executor import parallel_map

        def _sim(key):
            return key

        def run(plan):
            faults = open_faults(plan)
            return parallel_map(_sim, faults)
    """,
}

BAD_DRA504 = {
    "src/repro/mc/obs_util.py": """
        def note(tracer, kind, t):
            tracer.emit(kind, t=t)  # dra: noqa[DRA201] reason=thin wrapper; call sites are checked interprocedurally by DRA504
    """,
    "src/repro/mc/run.py": """
        from repro.mc.obs_util import note

        def go(tracer):
            note(tracer, "mc.totally_unregistered", 0.0)
    """,
}

BAD_DRA505 = {
    "src/repro/mc/model.py": """
        import time

        class Engine:
            def schedule(self, t, action, label=None):
                pass

        def _on_fire():
            return _stamp()

        def _stamp():
            return time.time()  # dra: noqa[DRA102] reason=fixture: DRA505 must flag this through the call chain on its own

        def main():
            eng = Engine()
            eng.schedule(1.0, _on_fire)
    """,
}

INJECTED = {
    "DRA501": BAD_DRA501,
    "DRA502": BAD_DRA502,
    "DRA503": BAD_DRA503,
    "DRA504": BAD_DRA504,
    "DRA505": BAD_DRA505,
}


class TestDRA501RngProvenance:
    def test_hard_seed_through_cross_module_constant(self, flow_codes):
        assert flow_codes(BAD_DRA501) == ["DRA501"]

    def test_closure_capturing_stream_across_pool(self, flow_codes):
        assert flow_codes(BAD_DRA501_CLOSURE) == ["DRA501"]

    def test_module_level_generator_flagged(self, flow_codes):
        files = {
            "src/repro/mc/globals_rng.py": """
                from numpy.random import default_rng

                def seed_of():
                    return 3

                RNG = default_rng(seed_of() or None)
            """,
        }
        assert flow_codes(files) == ["DRA501"]

    def test_param_derived_seed_is_clean(self, flow_codes):
        files = {
            "src/repro/mc/clean.py": """
                from numpy.random import default_rng

                def estimate(seed_seq, n):
                    rng = default_rng(seed_seq)
                    return rng.random(n).mean()
            """,
        }
        assert flow_codes(files) == []

    def test_spawned_task_stream_is_clean(self, flow_codes):
        files = {
            "src/repro/mc/spawned.py": """
                from numpy.random import default_rng

                from repro.runtime.executor import parallel_map

                def _task(payload):
                    seq, x = payload
                    rng = default_rng(seq)
                    return x + rng.random()

                def run(points, root_seq):
                    payloads = list(zip(root_seq.spawn(len(points)), points))
                    return parallel_map(_task, payloads)
            """,
        }
        assert flow_codes(files) == []


class TestDRA502WorkerRace:
    def test_worker_writing_cross_module_dict(self, flow_codes):
        assert flow_codes(BAD_DRA502) == ["DRA502"]

    def test_mutating_method_on_module_list(self, flow_codes):
        files = {
            "src/repro/mc/acc.py": "SEEN = []\n",
            "src/repro/mc/work.py": """
                from repro.mc import acc
                from repro.runtime.executor import parallel_map

                def _task(x):
                    acc.SEEN.append(x)
                    return x

                def run(items):
                    return parallel_map(_task, items)
            """,
        }
        assert flow_codes(files) == ["DRA502"]

    def test_transitively_reachable_writer_flagged(self, flow_codes):
        files = {
            "src/repro/mc/state.py": "CACHE = {}\n",
            "src/repro/mc/deep.py": """
                from repro.mc.state import CACHE
                from repro.runtime.executor import parallel_map

                def _task(x):
                    return _helper(x)

                def _helper(x):
                    CACHE[x] = x
                    return x

                def run(items):
                    return parallel_map(_task, items)
            """,
        }
        assert flow_codes(files) == ["DRA502"]

    def test_local_and_payload_state_is_clean(self, flow_codes):
        files = {
            "src/repro/mc/clean.py": """
                from repro.runtime.executor import parallel_map

                def _task(x):
                    local = {}
                    local[x] = x * x
                    return local

                def run(items):
                    return parallel_map(_task, items)
            """,
        }
        assert flow_codes(files) == []

    def test_driver_side_writes_are_clean(self, flow_codes):
        # the *driver* may fold worker returns into module state -- only
        # worker-reachable writers race
        files = {
            "src/repro/mc/fold.py": """
                from repro.runtime.executor import parallel_map

                TOTALS = {}

                def _task(x):
                    return x * x

                def run(items):
                    for item, sq in zip(items, parallel_map(_task, items)):
                        TOTALS[item] = sq
                    return TOTALS
            """,
        }
        assert flow_codes(files) == []


class TestDRA503UnorderedEscape:
    def test_cross_module_keys_into_dispatch(self, flow_codes):
        assert flow_codes(BAD_DRA503) == ["DRA503"]

    def test_taint_through_local_then_iteration(self, flow_codes):
        files = {
            "src/repro/mc/mix.py": """
                from repro.runtime.executor import parallel_map

                def _sim(key):
                    return key

                def run(plan):
                    pending = plan.items()
                    jobs = [k for k, _ in pending]
                    return parallel_map(_sim, jobs)
            """,
        }
        assert flow_codes(files) == ["DRA503"]

    def test_sorted_at_source_function_is_clean(self, flow_codes):
        files = {
            "src/repro/mc/plan.py": """
                def open_faults(plan):
                    return sorted(plan.keys())
            """,
            "src/repro/mc/sweep.py": """
                from repro.mc.plan import open_faults
                from repro.runtime.executor import parallel_map

                def _sim(key):
                    return key

                def run(plan):
                    return parallel_map(_sim, open_faults(plan))
            """,
        }
        assert flow_codes(files) == []

    def test_direct_local_case_stays_dra103(self, flow_report, tmp_path):
        # `.items()` written directly at the dispatch site is the local
        # rule's finding; DRA503 must not double-report it
        files = {
            "src/repro/mc/direct.py": """
                from repro.runtime.executor import parallel_map

                def _sim(kv):
                    return kv

                def run(plan):
                    return parallel_map(_sim, plan.items())
            """,
        }
        report = flow_report(files)
        codes = [f.code for f in report.findings]
        assert codes == ["DRA103"]


class TestDRA504LiteralFlow:
    def test_unregistered_kind_through_wrapper(self, flow_codes):
        report = flow_codes(BAD_DRA504)
        assert report == ["DRA504"]

    def test_wrapper_finding_lands_at_caller(self, flow_report):
        report = flow_report(BAD_DRA504)
        (finding,) = [f for f in report.findings if f.code == "DRA504"]
        assert finding.path.endswith("src/repro/mc/run.py")

    def test_registered_kind_through_wrapper_is_clean(self, flow_codes):
        files = {
            "src/repro/mc/obs_util.py": """
                def note(tracer, kind, t):
                    tracer.emit(kind, t=t)  # dra: noqa[DRA201] reason=thin wrapper; call sites are checked interprocedurally by DRA504
            """,
            "src/repro/mc/run.py": """
                from repro.mc.obs_util import note

                def go(tracer):
                    note(tracer, "sim.fire", 0.0)
            """,
        }
        assert flow_codes(files) == []

    def test_unfoldable_wrapper_arg_flagged(self, flow_codes):
        files = {
            "src/repro/mc/obs_util.py": """
                def note(tracer, kind, t):
                    tracer.emit(kind, t=t)  # dra: noqa[DRA201] reason=thin wrapper; call sites are checked interprocedurally by DRA504
            """,
            "src/repro/mc/run.py": """
                from repro.mc.obs_util import note

                def go(tracer, kinds):
                    for k in kinds:
                        note(tracer, k, 0.0)
            """,
        }
        assert flow_codes(files) == ["DRA504"]

    def test_metric_name_via_module_constant(self, flow_codes):
        files = {
            "src/repro/mc/names.py": 'FAMILY = "mc.bogus"\n',
            "src/repro/mc/run.py": """
                from repro.mc.names import FAMILY

                def count(registry):
                    registry.counter(FAMILY).inc()  # dra: noqa[DRA202] reason=fixture: DRA504 must judge the folded constant itself
            """,
        }
        assert flow_codes(files) == ["DRA504"]

    def test_registered_constant_metric_is_clean(self, flow_codes):
        files = {
            "src/repro/mc/names.py": 'NAME = "mc.is.cycles"\n',
            "src/repro/mc/run.py": """
                from repro.mc.names import NAME

                def count(registry):
                    registry.counter(NAME).inc()  # dra: noqa[DRA202] reason=fixture: constant folds to a registered name
            """,
        }
        assert flow_codes(files) == []


class TestDRA505HotpathPurity:
    def test_wallclock_through_scheduled_chain(self, flow_codes):
        assert flow_codes(BAD_DRA505, select=frozenset({"DRA5"})) == ["DRA505"]

    def test_lambda_scheduled_target_reached(self, flow_codes):
        files = {
            "src/repro/mc/model.py": """
                import time

                class Engine:
                    def schedule_in(self, dt, action):
                        pass

                def probe():
                    return time.perf_counter()  # dra: noqa[DRA102] reason=fixture: DRA505 must flag this via the lambda edge

                def main(eng):
                    eng.schedule_in(0.5, lambda: probe() + 1)
            """,
        }
        assert flow_codes(files, select=frozenset({"DRA5"})) == ["DRA505"]

    def test_unscheduled_io_is_not_hotpath(self, flow_codes):
        files = {
            "src/repro/mc/driver.py": """
                def dump(rows, path):
                    with open(path, "w") as fh:
                        for row in rows:
                            fh.write(f"{row}\\n")
            """,
        }
        assert flow_codes(files, select=frozenset({"DRA5"})) == []

    def test_pure_scheduled_frame_is_clean(self, flow_codes):
        files = {
            "src/repro/mc/model.py": """
                class Engine:
                    def schedule(self, t, action, label=None):
                        pass

                def _on_fire(state):
                    return state + 1

                def main(eng, state):
                    eng.schedule(1.0, _on_fire)
            """,
        }
        assert flow_codes(files, select=frozenset({"DRA5"})) == []


class TestSuppressionInterplay:
    """Policy: interprocedural findings are waived at the SINK line."""

    def test_sink_line_waiver_silences(self, flow_report):
        files = dict(BAD_DRA503)
        files["src/repro/mc/sweep.py"] = """
            from repro.mc.plan import open_faults
            from repro.runtime.executor import parallel_map

            def _sim(key):
                return key

            def run(plan):
                faults = open_faults(plan)
                return parallel_map(_sim, faults)  # dra: noqa[DRA503] reason=single-writer plan in this harness; order provably immaterial
        """
        report = flow_report(files)
        assert [f.code for f in report.findings] == []
        assert report.suppressed == 1

    def test_source_line_waiver_does_not_silence(self, flow_report):
        # the waiver sits where the unordered value is BORN -- policy
        # says that line cannot vouch for every downstream sink
        files = dict(BAD_DRA503)
        files["src/repro/mc/plan.py"] = """
            def open_faults(plan):
                return plan.keys()  # dra: noqa[DRA503] reason=attempting to waive at the source; must not work
        """
        report = flow_report(files)
        assert [f.code for f in report.findings] == ["DRA503"]

    def test_dra501_sink_waiver(self, flow_report):
        files = {
            "src/repro/mc/driver.py": """
                from numpy.random import default_rng

                def calibrate():
                    rng = default_rng(99)  # dra: noqa[DRA501] reason=calibration-only stream; results never consumed
                    return rng.random()
            """,
        }
        report = flow_report(files)
        assert [f.code for f in report.findings] == []
        assert report.suppressed == 1

    def test_dra505_sink_waiver(self, flow_report):
        files = dict(BAD_DRA505)
        files["src/repro/mc/model.py"] = files["src/repro/mc/model.py"].replace(
            "reason=fixture: DRA505 must flag this through the call chain on its own",
            "reason=fixture",
        ).replace(
            "time.time()  # dra: noqa[DRA102] reason=fixture",
            "time.time()  # dra: noqa[DRA102,DRA505] reason=fixture: waived at the impure call, the sink",
        )
        report = flow_report(files, select=frozenset({"DRA5"}))
        assert [f.code for f in report.findings] == []
        assert report.suppressed == 1


class TestGraphExport:
    def test_payload_schema_and_edges(self, tmp_path):
        _write_tree(tmp_path, BAD_DRA503)
        out = tmp_path / "graph.json"
        lint_paths([str(tmp_path)], graph_out=str(out))
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-callgraph"
        assert doc["v"] == GRAPH_SCHEMA_VERSION
        names = {f["name"] for f in doc["functions"]}
        assert any(n.endswith("repro.mc.sweep.run") for n in names)
        run_entry = next(
            f for f in doc["functions"] if f["name"].endswith("repro.mc.sweep.run")
        )
        edges = {(c["to"].split(".")[-1], c["kind"]) for c in run_entry["calls"]}
        assert ("_sim", "pool") in edges
        assert ("open_faults", "call") in edges
        assert any(w.endswith("._sim") for w in doc["worker_entries"])

    def test_graph_bytes_identical_across_jobs(self, tmp_path):
        _write_tree(tmp_path, BAD_DRA503)
        out1 = tmp_path / "g1.json"
        out8 = tmp_path / "g8.json"
        lint_paths([str(tmp_path)], jobs=1, graph_out=str(out1))
        lint_paths([str(tmp_path)], jobs=8, graph_out=str(out8))
        assert out1.read_bytes() == out8.read_bytes()


class TestCliGate:
    """The acceptance pins: every injected violation exits nonzero."""

    @pytest.mark.parametrize("code", sorted(INJECTED))
    def test_injected_violation_fails_lint(self, code, tmp_path, capsys):
        _write_tree(tmp_path, INJECTED[code])
        rc = main(["lint", str(tmp_path), "--select", "DRA5"])
        out = capsys.readouterr().out
        assert rc != 0
        assert code in out

    def test_no_interprocedural_skips_the_pass(self, tmp_path, capsys):
        _write_tree(tmp_path, BAD_DRA503)
        rc = main(["lint", str(tmp_path), "--no-interprocedural"])
        capsys.readouterr()
        assert rc == 0

    def test_graph_out_via_cli(self, tmp_path, capsys):
        _write_tree(tmp_path, {"src/repro/mc/a.py": "def f():\n    return 1\n"})
        out = tmp_path / "graph.json"
        rc = main(["lint", str(tmp_path), "--graph-out", str(out)])
        capsys.readouterr()
        assert rc == 0
        assert json.loads(out.read_text())["schema"] == "repro-callgraph"


class TestRegistryAndMetrics:
    def test_flow_rules_carry_names_and_summaries(self):
        assert sorted(FLOW_RULES) == [
            "DRA501", "DRA502", "DRA503", "DRA504", "DRA505",
        ]
        for code, rule in FLOW_RULES.items():
            assert rule.code == code
            assert rule.name.startswith("flow.")
            assert rule.summary

    def test_wall_ms_gauge_and_report_field(self, tmp_path):
        _write_tree(tmp_path, {"src/repro/mc/a.py": "def f():\n    return 1\n"})
        registry = MetricsRegistry()
        with collecting(registry):
            report = lint_paths([str(tmp_path)])
        assert report.wall_ms > 0.0
        assert "lint.wall_ms" in registry.names()

    def test_wall_ms_never_in_payload(self, tmp_path):
        _write_tree(tmp_path, {"src/repro/mc/a.py": "def f():\n    return 1\n"})
        report = lint_paths([str(tmp_path)])
        assert "wall_ms" not in json.dumps(report.to_payload())

    def test_flow_findings_obey_select_ignore(self, tmp_path):
        _write_tree(tmp_path, BAD_DRA503)
        ignored = lint_paths([str(tmp_path)], ignore=frozenset({"DRA5"}))
        assert [f.code for f in ignored.findings] == []
        assert "DRA503" not in ignored.selected
        selected = lint_paths([str(tmp_path)], select=frozenset({"DRA503"}))
        assert [f.code for f in selected.findings] == ["DRA503"]
        assert selected.selected == ("DRA503",)

"""One known-bad and one known-good fixture per rule (DRA101-DRA401)."""

from __future__ import annotations

from repro.lint import PARSE_ERROR_CODE, all_codes
from repro.lint.rules import RULES


class TestRegistry:
    def test_expected_catalogue(self):
        assert all_codes() == [
            "DRA101", "DRA102", "DRA103", "DRA104",
            "DRA105", "DRA201", "DRA202", "DRA301",
            "DRA401", "DRA501", "DRA502", "DRA503",
            "DRA504", "DRA505",
        ]

    def test_rules_carry_names_and_summaries(self):
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.name and rule.summary


class TestDRA101Rng:
    def test_stdlib_random_import_flagged(self, lint_codes):
        assert lint_codes("src/repro/sim/engine.py", "import random\n") == ["DRA101"]

    def test_from_random_import_flagged(self, lint_codes):
        codes = lint_codes("src/repro/traffic/gen.py", "from random import choice\n")
        assert codes == ["DRA101"]

    def test_unseeded_default_rng_flagged(self, lint_codes):
        src = """
            import numpy as np
            rng = np.random.default_rng()
        """
        assert "DRA101" in lint_codes("src/repro/montecarlo/x.py", src)

    def test_legacy_global_numpy_rng_flagged(self, lint_codes):
        src = """
            import numpy as np
            np.random.seed(0)
            x = np.random.uniform(0.0, 1.0)
        """
        assert lint_codes("src/repro/sim/x.py", src).count("DRA101") == 2

    def test_seeded_generator_ok(self, lint_codes):
        # seed arrives as a parameter (provenance intact): clean under
        # DRA101 *and* the interprocedural DRA501 pass -- a module-level
        # or hard-seeded generator would now be DRA501's finding
        src = """
            import numpy as np

            def make_stream(seed):
                rng = np.random.default_rng(seed)
                return rng.uniform(0.0, 1.0)
        """
        assert lint_codes("src/repro/sim/x.py", src) == []

    def test_sanctioned_stream_factory_exempt(self, lint_codes):
        # sim/rng.py is the one place allowed to touch raw entropy.
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert lint_codes("src/repro/sim/rng.py", src) == []


class TestDRA102Wallclock:
    def test_epoch_read_flagged_everywhere(self, lint_codes):
        src = "import time\nSTAMP = time.time()\n"
        assert "DRA102" in lint_codes("examples/demo.py", src)

    def test_monotonic_clock_ok_outside_core(self, lint_codes):
        src = "import time\nt0 = time.perf_counter()\n"
        assert lint_codes("examples/demo.py", src) == []

    def test_monotonic_clock_flagged_in_sim_core(self, lint_codes):
        src = "import time\nt0 = time.perf_counter()\n"
        codes = lint_codes("src/repro/sim/engine.py", src)
        # the import alone is already a finding inside the core
        assert codes == ["DRA102", "DRA102"]

    def test_datetime_now_flagged(self, lint_codes):
        src = "from datetime import datetime\nSTAMP = datetime.now()\n"
        assert "DRA102" in lint_codes("src/repro/analysis/report.py", src)

    def test_sanctioned_stopwatch_module_exempt(self, lint_codes):
        src = "import time\n\ndef now():\n    return time.perf_counter()\n"
        assert lint_codes("src/repro/runtime/timing.py", src) == []


class TestDRA103SortedDispatch:
    def test_dict_items_feeding_dispatch_flagged(self, lint_codes):
        src = """
            from repro.runtime import parallel_map

            def sweep(configs, f):
                return parallel_map(f, configs.items())
        """
        assert lint_codes("src/repro/analysis/sweep.py", src) == ["DRA103"]

    def test_loop_over_set_in_dispatching_function_flagged(self, lint_codes):
        src = """
            from repro.runtime import metered_parallel_map

            def sweep(tags, f):
                jobs = [t for t in set(tags)]
                return metered_parallel_map(f, jobs)
        """
        assert lint_codes("src/repro/analysis/sweep.py", src) == ["DRA103"]

    def test_sorted_wrapper_ok(self, lint_codes):
        src = """
            from repro.runtime import parallel_map

            def sweep(configs, f):
                return parallel_map(f, sorted(configs.items()))
        """
        assert lint_codes("src/repro/analysis/sweep.py", src) == []

    def test_hash_order_ok_without_dispatch(self, lint_codes):
        # hash-order iteration is only a determinism hazard when the
        # function fans work out or spawns seed streams
        src = """
            def summarize(configs):
                return {k: len(v) for k, v in configs.items()}
        """
        assert lint_codes("src/repro/analysis/sweep.py", src) == []


class TestDRA104BareExcept:
    def test_bare_except_flagged(self, lint_codes):
        src = """
            def f():
                try:
                    risky()
                except:
                    recover()
        """
        assert lint_codes("src/repro/router/x.py", src) == ["DRA104"]

    def test_typed_except_ok(self, lint_codes):
        src = """
            def f(log):
                try:
                    risky()
                except ValueError as exc:
                    log.warning(exc)
        """
        assert lint_codes("src/repro/router/x.py", src) == []


class TestDRA105SwallowedException:
    def test_silent_pass_handler_flagged(self, lint_codes):
        src = """
            def f():
                try:
                    risky()
                except ValueError:
                    pass
        """
        assert lint_codes("src/repro/router/x.py", src) == ["DRA105"]

    def test_handler_that_acts_ok(self, lint_codes):
        src = """
            def f(log):
                try:
                    risky()
                except ValueError as exc:
                    log.warning(exc)
                    raise
        """
        assert lint_codes("src/repro/router/x.py", src) == []

    def test_tests_may_swallow(self, lint_codes):
        src = """
            def test_never_raises():
                try:
                    risky()
                except ValueError:
                    pass
        """
        assert lint_codes("tests/test_x.py", src) == []


class TestDRA201TraceKinds:
    def test_unregistered_kind_flagged(self, lint_codes):
        src = """
            def f(tracer):
                tracer.emit("made.up.kind", t=0.0)
        """
        assert lint_codes("src/repro/router/x.py", src) == ["DRA201"]

    def test_non_literal_kind_flagged(self, lint_codes):
        src = """
            def f(tracer, kind):
                tracer.emit(kind, t=0.0)
        """
        assert lint_codes("src/repro/router/x.py", src) == ["DRA201"]

    def test_registered_kind_ok(self, lint_codes):
        src = """
            def f(tracer):
                tracer.emit("sim.fire", t=1.0, event_id=7)
        """
        assert lint_codes("src/repro/router/x.py", src) == []

    def test_tests_outside_schema_scope(self, lint_codes):
        src = """
            def test_tracer(t):
                t.emit("demo.a", t=0.0)
        """
        assert lint_codes("tests/obs/test_x.py", src) == []


class TestDRA202MetricNames:
    def test_unregistered_name_flagged(self, lint_codes):
        src = """
            def f(reg):
                reg.counter("made.up.metric").inc()
        """
        assert lint_codes("src/repro/router/x.py", src) == ["DRA202"]

    def test_unregistered_fstring_prefix_flagged(self, lint_codes):
        src = """
            def f(reg, tag):
                reg.counter(f"made.up.{tag}").inc()
        """
        assert lint_codes("src/repro/router/x.py", src) == ["DRA202"]

    def test_non_literal_name_flagged(self, lint_codes):
        src = """
            def f(reg, name):
                reg.gauge(name).set(1.0)
        """
        assert lint_codes("src/repro/router/x.py", src) == ["DRA202"]

    def test_registered_name_and_family_ok(self, lint_codes):
        src = """
            def f(reg, code):
                reg.counter("lint.files").inc()
                reg.counter(f"lint.findings.{code}").inc()
        """
        assert lint_codes("src/repro/router/x.py", src) == []


class TestDRA301TestTolerances:
    def test_magic_epsilon_flagged(self, lint_codes):
        src = "def test_x(a, b):\n    assert abs(a - b) < 1e-9\n"
        assert lint_codes("tests/test_x.py", src) == ["DRA301"]

    def test_scaled_epsilon_with_floor_flagged(self, lint_codes):
        src = (
            "def test_x(a, b, scale):\n"
            "    assert abs(a - b) <= 1e-12 * scale + 1e-300\n"
        )
        assert lint_codes("tests/test_x.py", src) == ["DRA301"]

    def test_reversed_comparison_flagged(self, lint_codes):
        src = "def test_x(a, b):\n    assert 1e-9 > abs(a - b)\n"
        assert lint_codes("tests/test_x.py", src) == ["DRA301"]

    def test_integer_sigma_bound_ok(self, lint_codes):
        src = "def test_x(x, mu, se):\n    assert abs(x - mu) < 5 * se\n"
        assert lint_codes("tests/test_x.py", src) == []

    def test_derived_tolerance_ok(self, lint_codes):
        src = (
            "from repro.validate import FLOAT_EPS\n\n"
            "def test_x(a, b):\n"
            "    assert abs(a - b) <= 64 * FLOAT_EPS * abs(b)\n"
        )
        assert lint_codes("tests/test_x.py", src) == []

    def test_library_code_out_of_scope(self, lint_codes):
        # the rule polices tests; library float guards are a design choice
        src = "def clamp(a, b):\n    return abs(a - b) < 1e-9\n"
        assert lint_codes("src/repro/core/x.py", src) == []


class TestDRA401CliHelp:
    def test_flag_without_help_flagged(self, lint_codes):
        src = (
            "import argparse\n"
            "p = argparse.ArgumentParser()\n"
            "p.add_argument('--seed', type=int, default=0)\n"
        )
        assert lint_codes("src/repro/cli.py", src) == ["DRA401"]

    def test_subcommand_without_help_flagged(self, lint_codes):
        src = (
            "import argparse\n"
            "sub = argparse.ArgumentParser().add_subparsers()\n"
            "p = sub.add_parser('bench')\n"
        )
        assert lint_codes("src/repro/cli.py", src) == ["DRA401"]

    def test_flag_with_help_ok(self, lint_codes):
        src = (
            "import argparse\n"
            "p = argparse.ArgumentParser()\n"
            "p.add_argument('--seed', type=int, default=0, help='root seed')\n"
        )
        assert lint_codes("src/repro/cli.py", src) == []

    def test_positional_with_help_ok(self, lint_codes):
        src = (
            "import argparse\n"
            "p = argparse.ArgumentParser()\n"
            "p.add_argument('paths', nargs='*', help='files to scan')\n"
        )
        assert lint_codes("src/repro/cli.py", src) == []

    def test_non_literal_first_arg_out_of_scope(self, lint_codes):
        # only string-literal registrations are checked; anything else is
        # not how real CLI surface is declared
        src = "def reg(p, name):\n    p.add_argument(name)\n"
        assert lint_codes("src/repro/cli.py", src) == []

    def test_test_code_out_of_scope(self, lint_codes):
        src = (
            "import argparse\n"
            "p = argparse.ArgumentParser()\n"
            "p.add_argument('--x')\n"
        )
        assert lint_codes("tests/test_x.py", src) == []


class TestDRA002ParseError:
    def test_unparseable_file_reported(self, run_lint):
        report = run_lint("src/repro/sim/bad.py", "def broken(:\n")
        assert [f.code for f in report.findings] == [PARSE_ERROR_CODE]
        assert not report.ok

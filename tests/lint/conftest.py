"""Fixtures for the linter suite: write a snippet, lint it, read codes.

Every rule test materializes its fixture under ``tmp_path`` in the same
layout the real tree uses (``src/repro/<pkg>/...``, ``tests/...``), so
the path-sensitive scoping (sim core, obs scope, test code) is exercised
exactly as in production.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import LintReport, lint_paths


@pytest.fixture
def run_lint(tmp_path):
    """Write ``source`` at ``rel`` under tmp_path and lint just that file."""

    def run(rel: str, source: str, **kwargs) -> LintReport:
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return lint_paths([str(path)], **kwargs)

    return run


@pytest.fixture
def lint_codes(run_lint):
    """Like ``run_lint`` but returns just the finding codes, in order."""

    def run(rel: str, source: str, **kwargs) -> list[str]:
        return [f.code for f in run_lint(rel, source, **kwargs).findings]

    return run

"""Suppression syntax: waivers need exact codes and a written reason."""

from __future__ import annotations

from repro.lint import SUPPRESSION_CODE, scan_suppressions

BAD = "import random\n"


class TestInlineSuppression:
    def test_valid_suppression_silences_and_counts(self, run_lint):
        report = run_lint(
            "src/repro/sim/x.py",
            "import random  # dra: noqa[DRA101] reason=fixture exercises the legacy API\n",
        )
        assert report.ok
        assert report.suppressed == 1

    def test_missing_reason_is_its_own_finding(self, run_lint):
        report = run_lint(
            "src/repro/sim/x.py", "import random  # dra: noqa[DRA101]\n"
        )
        codes = [f.code for f in report.findings]
        # the malformed waiver silences nothing, so the original finding
        # survives alongside the DRA001
        assert sorted(codes) == [SUPPRESSION_CODE, "DRA101"]
        assert report.suppressed == 0

    def test_empty_reason_is_malformed(self, run_lint):
        report = run_lint(
            "src/repro/sim/x.py", "import random  # dra: noqa[DRA101] reason=\n"
        )
        assert SUPPRESSION_CODE in [f.code for f in report.findings]

    def test_wrong_code_does_not_silence(self, run_lint):
        report = run_lint(
            "src/repro/sim/x.py",
            "import random  # dra: noqa[DRA102] reason=names the wrong rule\n",
        )
        assert [f.code for f in report.findings] == ["DRA101"]
        assert report.suppressed == 0

    def test_multi_code_waiver(self, run_lint):
        report = run_lint(
            "src/repro/sim/x.py",
            "import random, time  # dra: noqa[DRA101,DRA102] reason=fixture needs both legacy APIs\n",
        )
        assert report.ok
        # one waiver, two findings silenced (the RNG and the clock import)
        assert report.suppressed == 2

    def test_suppression_applies_to_its_line_only(self, run_lint):
        report = run_lint(
            "src/repro/sim/x.py",
            "import time  # dra: noqa[DRA102] reason=scoped to this line\n"
            "import random\n",
        )
        assert [f.code for f in report.findings] == ["DRA101"]


class TestScanSuppressions:
    def test_docstring_mentions_are_not_waivers(self):
        source = '"""Docs show the syntax: # dra: noqa[DRA101] reason=x."""\n'
        table, findings = scan_suppressions("x.py", source)
        assert table == {} and findings == []

    def test_well_formed_comment_parsed(self):
        source = "x = 1  # dra: noqa[DRA101, DRA301] reason=because physics\n"
        table, findings = scan_suppressions("x.py", source)
        assert findings == []
        assert table[1].codes == frozenset({"DRA101", "DRA301"})
        assert table[1].reason == "because physics"

    def test_malformed_comment_located(self):
        table, findings = scan_suppressions("x.py", "x = 1  # dra: noqa\n")
        assert table == {}
        assert len(findings) == 1
        assert findings[0].code == SUPPRESSION_CODE
        assert findings[0].line == 1

"""Engine behaviour: selection, determinism, metrics and the CLI gate."""

from __future__ import annotations

import json
import textwrap

from repro.cli import main
from repro.lint import lint_paths, round_robin_chunks
from repro.obs.metrics import MetricsRegistry, collecting

MIXED = """
    import random
    STAMP = __import__
"""

VIOLATIONS = {
    "src/repro/sim/bad_rng.py": "import random\n",
    "src/repro/analysis/bad_clock.py": "import time\nT0 = time.time()\n",
    "tests/test_bad_tol.py": "def test_x(a, b):\n    assert abs(a - b) < 1e-9\n",
}


def _write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


class TestSelection:
    def test_select_prefix_narrows_rules(self, tmp_path):
        _write_tree(tmp_path, VIOLATIONS)
        report = lint_paths([str(tmp_path)], select=frozenset({"DRA3"}))
        assert [f.code for f in report.findings] == ["DRA301"]
        assert report.selected == ("DRA301",)

    def test_ignore_prefix_drops_rules(self, tmp_path):
        _write_tree(tmp_path, VIOLATIONS)
        report = lint_paths([str(tmp_path)], ignore=frozenset({"DRA1"}))
        assert [f.code for f in report.findings] == ["DRA301"]
        assert "DRA101" not in report.selected

    def test_exact_code_selection(self, tmp_path):
        _write_tree(tmp_path, VIOLATIONS)
        report = lint_paths([str(tmp_path)], select=frozenset({"DRA102"}))
        assert [f.code for f in report.findings] == ["DRA102"]


class TestDeterminism:
    def test_pool_report_is_bit_identical_to_serial(self, tmp_path):
        _write_tree(tmp_path, VIOLATIONS)
        serial = lint_paths([str(tmp_path)], jobs=1)
        pooled = lint_paths([str(tmp_path)], jobs=2)
        assert serial == pooled

    def test_findings_sorted_by_path_line_col(self, tmp_path):
        _write_tree(tmp_path, VIOLATIONS)
        report = lint_paths([str(tmp_path)])
        keys = [(f.path, f.line, f.col, f.code) for f in report.findings]
        assert keys == sorted(keys)

    def test_more_jobs_than_files_is_identical(self, tmp_path):
        # 3 files, 8 workers: round-robin chunking must leave the report
        # byte-identical to the serial run, never jobs-dependent
        _write_tree(tmp_path, VIOLATIONS)
        serial = lint_paths([str(tmp_path)], jobs=1)
        pooled = lint_paths([str(tmp_path)], jobs=8)
        assert serial == pooled
        assert json.dumps(serial.to_payload()) == json.dumps(pooled.to_payload())


class TestRoundRobinChunks:
    def test_assignment_is_sorted_round_robin(self):
        files = ["a.py", "b.py", "c.py", "d.py", "e.py"]
        assert round_robin_chunks(files, 2) == [
            ["a.py", "c.py", "e.py"],
            ["b.py", "d.py"],
        ]

    def test_empty_chunks_dropped_when_jobs_exceed_files(self):
        files = ["a.py", "b.py", "c.py"]
        chunks = round_robin_chunks(files, 8)
        assert chunks == [["a.py"], ["b.py"], ["c.py"]]

    def test_every_file_assigned_exactly_once(self):
        files = [f"{i}.py" for i in range(17)]
        chunks = round_robin_chunks(files, 4)
        flat = sorted(f for chunk in chunks for f in chunk)
        assert flat == sorted(files)


class TestMetrics:
    def test_lint_counters_flow_to_registry(self, tmp_path):
        _write_tree(tmp_path, VIOLATIONS)
        with collecting(MetricsRegistry()) as reg:
            report = lint_paths([str(tmp_path)])
        metrics = reg.snapshot()["metrics"]
        assert metrics["lint.files"]["value"] == report.files == 3
        assert metrics["lint.findings"]["value"] == len(report.findings) == 3
        assert metrics["lint.findings.DRA101"]["value"] == 1
        assert metrics["lint.findings.DRA102"]["value"] == 1


class TestCliGate:
    def test_injected_violation_exits_nonzero(self, tmp_path, capsys):
        # the pinned gate contract: a fresh DRA101 violation anywhere in
        # the scanned tree must fail `repro-dra lint`
        _write_tree(
            tmp_path, {"src/repro/sim/injected.py": "import random\n"}
        )
        assert main(["lint", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "DRA101" in captured.out
        assert "FAIL" in captured.err

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write_tree(
            tmp_path,
            {"src/repro/sim/fine.py": "def double(x):\n    return 2 * x\n"},
        )
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_format_payload(self, tmp_path, capsys):
        _write_tree(tmp_path, VIOLATIONS)
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-lint"
        assert payload["v"] == 1
        assert payload["ok"] is False
        assert payload["counts"] == {"DRA101": 1, "DRA102": 1, "DRA301": 1}
        assert all(
            {"path", "line", "col", "code", "message"} <= set(f)
            for f in payload["findings"]
        )

    def test_cli_select_and_ignore(self, tmp_path, capsys):
        _write_tree(tmp_path, VIOLATIONS)
        assert main(["lint", str(tmp_path), "--select", "DRA3"]) == 1
        out = capsys.readouterr().out
        assert "DRA301" in out and "DRA101" not in out
        assert (
            main(["lint", str(tmp_path), "--ignore", "DRA1,DRA3"]) == 0
        )

    def test_repo_tree_is_clean(self, capsys):
        # the merged tree must satisfy its own gate (acceptance criterion)
        assert main(["lint", "src", "tests", "benchmarks", "examples"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

"""Sweep-driver tests."""

import numpy as np
import pytest

from repro.analysis.sweep import (
    FIG6_CONFIGS,
    FIG8_LOADS,
    SweepRecord,
    availability_sweep,
    performance_sweep,
    reliability_sweep,
)


class TestSweepRecord:
    def test_extra_lookup(self):
        rec = SweepRecord("x", 1.0, 2.0, extra=(("n", 3), ("m", 2)))
        assert rec.get("n") == 3
        assert rec.get("missing", "dflt") == "dflt"


class TestReliabilitySweep:
    def test_default_covers_paper_families(self):
        recs = reliability_sweep(times=np.array([0.0, 40_000.0]))
        labels = {r.label for r in recs}
        assert "BDR" in labels
        assert len(labels) == len(FIG6_CONFIGS) + 1

    def test_record_count(self):
        t = np.array([0.0, 1000.0, 2000.0])
        recs = reliability_sweep(times=t, configs=[(3, 2)], include_bdr=False)
        assert len(recs) == 3
        assert all(r.label == "DRA(N=3,M=2)" for r in recs)

    def test_values_are_probabilities(self):
        recs = reliability_sweep(times=np.array([10_000.0]), configs=[(5, 3)])
        assert all(0.0 <= r.value <= 1.0 for r in recs)

    def test_variant_forwarded(self):
        t = np.array([150_000.0])
        paper = reliability_sweep(times=t, configs=[(3, 2)], include_bdr=False)
        ext = reliability_sweep(
            times=t, configs=[(3, 2)], include_bdr=False, variant="extended"
        )
        assert paper[0].value > ext[0].value


class TestAvailabilitySweep:
    def test_two_repair_policies_by_default(self):
        recs = availability_sweep(configs=[(3, 2)])
        mus = sorted({r.x for r in recs})
        assert mus == [pytest.approx(1 / 12), pytest.approx(1 / 3)]

    def test_nines_annotation_present(self):
        recs = availability_sweep(configs=[(3, 2)])
        for rec in recs:
            assert isinstance(rec.get("nines"), int)
            assert rec.get("notation")


class TestPerformanceSweep:
    def test_default_loads(self):
        recs = performance_sweep()
        loads = {r.get("load") for r in recs}
        assert loads == set(FIG8_LOADS)

    def test_x_range(self):
        recs = performance_sweep(loads=[0.5], n=6)
        xs = sorted(r.x for r in recs)
        assert xs == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_percentages_bounded(self):
        recs = performance_sweep()
        assert all(0.0 <= r.value <= 100.0 for r in recs)

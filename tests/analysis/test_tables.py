"""Table-formatter tests."""

import numpy as np

from repro.analysis import (
    availability_sweep,
    format_availability_table,
    format_performance_table,
    format_reliability_table,
    format_series,
    performance_sweep,
    reliability_sweep,
)
from repro.analysis.sweep import SweepRecord


class TestFormatSeries:
    def test_one_row_per_x_one_column_per_label(self):
        recs = [
            SweepRecord("a", 1.0, 0.5),
            SweepRecord("a", 2.0, 0.6),
            SweepRecord("b", 1.0, 0.7),
            SweepRecord("b", 2.0, 0.8),
        ]
        out = format_series(recs)
        lines = out.splitlines()
        assert len(lines) == 3  # header + 2 x rows
        assert "a" in lines[0] and "b" in lines[0]
        assert "0.5000" in lines[1] and "0.7000" in lines[1]

    def test_missing_cell_left_blank(self):
        recs = [SweepRecord("a", 1.0, 0.5), SweepRecord("b", 2.0, 0.7)]
        out = format_series(recs)
        assert "0.5000" in out and "0.7000" in out


class TestFigureTables:
    def test_reliability_table_selects_time_points(self):
        recs = reliability_sweep(
            times=np.array([0.0, 20_000.0, 40_000.0]), configs=[(3, 2)]
        )
        out = format_reliability_table(recs, time_points=[40_000.0])
        lines = out.splitlines()
        assert len(lines) == 2
        assert "40000" in lines[1]

    def test_availability_table_contains_notation(self):
        recs = availability_sweep(configs=[(3, 2)])
        out = format_availability_table(recs)
        assert "9^8" in out
        assert "1/3" in out and "1/12" in out

    def test_performance_table_shape(self):
        out = format_performance_table(performance_sweep(loads=[0.15, 0.7], n=6))
        lines = out.splitlines()
        assert len(lines) == 6  # header + X_faulty 1..5
        assert "%" in lines[1]

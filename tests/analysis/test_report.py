"""Report-generator tests."""

from repro.analysis.report import generate_report


class TestReport:
    def test_contains_every_section(self):
        text = generate_report()
        for heading in (
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "MTTF",
            "elasticities",
            "cost vs availability",
        ):
            assert heading in text, f"missing section {heading!r}"

    def test_contains_headline_values(self):
        text = generate_report()
        assert "9^4" in text  # BDR fast-repair nines
        assert "9^8" in text  # DRA minimal config
        assert "9^9" in text  # saturation
        assert "lam_lpi" in text

    def test_markdown_code_fences_balanced(self):
        text = generate_report()
        assert text.count("```") % 2 == 0

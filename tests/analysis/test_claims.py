"""Claims-registry tests."""

from repro.analysis.claims import all_claims, check_claims


class TestClaimsRegistry:
    def test_registry_covers_all_sections(self):
        sections = {c.section for c in all_claims()}
        assert {"5.1", "5.2", "5.3"} <= sections

    def test_claim_ids_unique(self):
        ids = [c.claim_id for c in all_claims()]
        assert len(set(ids)) == len(ids)

    def test_every_claim_holds(self):
        """The reproduction's single most important test."""
        results = check_claims()
        failing = [r for r in results if not r.passed]
        assert not failing, "\n".join(
            f"{r.claim.claim_id}: {r.detail}" for r in failing
        )

    def test_details_are_informative(self):
        for r in check_claims():
            assert r.detail  # every check must explain itself

    def test_cli_claims_command(self, capsys):
        from repro.cli import main

        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "12/12 claims hold" in out

"""Export-helper tests."""

import csv
import io

import networkx as nx

from repro.analysis import chain_to_networkx, records_to_csv
from repro.analysis.export import chain_to_dot
from repro.analysis.sweep import SweepRecord
from repro.core import DRAConfig
from repro.core.reliability import build_dra_reliability_chain


class TestCSV:
    def test_roundtrip(self, tmp_path):
        recs = [
            SweepRecord("a", 1.0, 0.5, extra=(("n", 3),)),
            SweepRecord("b", 2.0, 0.7),
        ]
        path = tmp_path / "out.csv"
        text = records_to_csv(recs, path)
        assert path.read_text() == text
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["label"] == "a"
        assert rows[0]["n"] == "3"
        assert rows[1]["n"] == ""

    def test_no_path_returns_only(self):
        text = records_to_csv([SweepRecord("a", 1.0, 2.0)])
        assert "label,x,value" in text


class TestGraphExport:
    def test_networkx_structure(self):
        chain = build_dra_reliability_chain(DRAConfig(n=3, m=2))
        g = chain_to_networkx(chain)
        assert isinstance(g, nx.DiGraph)
        assert g.number_of_nodes() == chain.n_states
        # F is absorbing: no out-edges.
        assert g.out_degree("F") == 0
        # All rates positive.
        assert all(d["rate"] > 0 for _, _, d in g.edges(data=True))

    def test_dot_output(self):
        chain = build_dra_reliability_chain(DRAConfig(n=3, m=2))
        dot = chain_to_dot(chain)
        assert dot.startswith("digraph")
        assert '"F"' in dot
        assert "->" in dot

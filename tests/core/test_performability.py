"""Performability-model tests."""

import numpy as np
import pytest

from repro.core.parameters import FailureRates, RepairPolicy
from repro.core.performability import PerformabilityModel
from repro.core.performance import PerformanceModel


def make_model(n=6, repair_style="bulk", mu=1.0 / 3.0):
    return PerformabilityModel(
        PerformanceModel(n=n),
        RepairPolicy(mu=mu),
        repair_style=repair_style,
    )


class TestChainStructure:
    def test_states_are_fault_counts(self):
        m = make_model(n=6)
        assert m.chain.states == tuple(range(6))

    def test_birth_rates_scale_with_healthy_cards(self):
        m = make_model(n=6)
        lam = FailureRates().lam_lc
        assert m.chain.rate(0, 1) == pytest.approx(6 * lam)
        assert m.chain.rate(3, 4) == pytest.approx(3 * lam)

    def test_bulk_repair_targets_zero(self):
        m = make_model(n=5, repair_style="bulk")
        for k in range(1, 5):
            assert m.chain.rate(k, 0) == pytest.approx(1.0 / 3.0)

    def test_per_lc_repair_steps_down(self):
        m = make_model(n=5, repair_style="per-lc")
        assert m.chain.rate(3, 2) == pytest.approx(3 / 3.0)
        assert m.chain.rate(3, 0) == 0.0

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            make_model(repair_style="magic")


class TestSteadyState:
    def test_mass_concentrates_on_zero_faults(self):
        res = make_model().steady_state(0.5)
        assert res.state_probabilities[0] > 0.999
        assert res.any_fault_probability < 1e-3

    def test_expected_degradation_near_100(self):
        """With realistic rates the router almost always delivers fully."""
        res = make_model().steady_state(0.7)
        assert res.expected_degradation_percent > 99.9

    def test_low_load_higher_performability(self):
        m = make_model()
        assert (
            m.steady_state(0.15).expected_degradation_percent
            >= m.steady_state(0.70).expected_degradation_percent
        )

    def test_slower_repair_hurts(self):
        fast = make_model(mu=1.0 / 3.0).steady_state(0.7)
        slow = make_model(mu=1.0 / 12.0).steady_state(0.7)
        assert slow.expected_degradation_percent < fast.expected_degradation_percent
        assert slow.any_fault_probability > fast.any_fault_probability


class TestTransient:
    def test_starts_at_full_service(self):
        m = make_model()
        out = m.transient(0.7, np.array([0.0]))
        assert out[0] == pytest.approx(100.0)

    def test_decays_to_steady_state(self):
        m = make_model()
        out = m.transient(0.7, np.array([1e6]))
        ss = m.steady_state(0.7).expected_degradation_percent
        assert out[0] == pytest.approx(ss, abs=1e-6)

    def test_monotone_decay(self):
        m = make_model()
        t = np.array([0.0, 10.0, 100.0, 1000.0])
        out = m.transient(0.7, t)
        assert np.all(np.diff(out) <= 1e-9)

"""Parameter dataclass tests."""

import pytest

from repro.core import DRAConfig, FailureRates, RepairPolicy


class TestFailureRates:
    def test_defaults_match_paper(self):
        r = FailureRates()
        assert r.lam_lc == 2.0e-5
        assert r.lam_lpd == 6.0e-6
        assert r.lam_lpi == 1.4e-5
        assert r.lam_bc == 1.0e-6
        assert r.lam_bus == 1.0e-6
        assert r.lam_pd == 7.0e-6
        assert r.lam_pi == 1.5e-5

    def test_defaults_pass_consistency(self):
        FailureRates().validate()

    def test_inconsistent_rates_detected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            FailureRates(lam_lc=1e-5).validate()

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            FailureRates(lam_lc=0.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            FailureRates(lam_bus=float("nan"))

    def test_t_prime_rate(self):
        assert FailureRates().lam_t_prime == pytest.approx(2.0e-6)

    def test_scaled(self):
        r = FailureRates().scaled(10.0)
        assert r.lam_lc == pytest.approx(2.0e-4)
        r.validate()  # scaling preserves consistency

    def test_scaled_invalid_factor(self):
        with pytest.raises(ValueError, match="positive"):
            FailureRates().scaled(0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FailureRates().lam_lc = 1.0


class TestDRAConfig:
    def test_pool_sizes(self):
        cfg = DRAConfig(n=9, m=4)
        assert cfg.n_inter_pi == 7
        assert cfg.n_inter_pd == 3

    def test_minimum_configuration(self):
        cfg = DRAConfig(n=3, m=2)
        assert cfg.n_inter_pi == 1
        assert cfg.n_inter_pd == 1

    @pytest.mark.parametrize("n, m", [(2, 2), (3, 1), (3, 4), (0, 0)])
    def test_invalid_configs_rejected(self, n, m):
        with pytest.raises(ValueError):
            DRAConfig(n=n, m=m)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            DRAConfig(n=3, m=2, variant="bogus")

    @pytest.mark.parametrize("variant", DRAConfig.VARIANTS)
    def test_all_variants_accepted(self, variant):
        DRAConfig(n=5, m=3, variant=variant)


class TestRepairPolicy:
    def test_paper_policies(self):
        assert RepairPolicy.three_hours().mu == pytest.approx(1.0 / 3.0)
        assert RepairPolicy.half_day().mu == pytest.approx(1.0 / 12.0)

    def test_default_is_three_hours(self):
        assert RepairPolicy().mu == pytest.approx(1.0 / 3.0)

    def test_invalid_mu_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            RepairPolicy(mu=0.0)

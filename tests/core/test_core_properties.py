"""Property-based tests for the dependability models (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import dra_availability, dra_reliability
from repro.core.performance import promised_bandwidth
from repro.core.parameters import RepairPolicy
from repro.core.reliability import build_dra_reliability_chain
from repro.core.states import Failed
from tests.conftest import dra_configs, failure_rates


@settings(max_examples=25, deadline=None)
@given(cfg=dra_configs(), rates=failure_rates())
def test_dra_chain_always_valid(cfg, rates):
    """Any (N, M, variant, rates) yields a well-formed absorbing chain."""
    chain = build_dra_reliability_chain(cfg, rates)
    assert chain.absorbing_states() == (Failed,)
    assert chain.n_states >= 5


@settings(max_examples=15, deadline=None)
@given(cfg=dra_configs(), rates=failure_rates())
def test_reliability_monotone_and_bounded(cfg, rates):
    t = np.linspace(0.0, 50_000.0, 6)
    r = dra_reliability(cfg, t, rates).reliability
    assert np.all((0.0 <= r) & (r <= 1.0 + 1e-12))
    assert np.all(np.diff(r) <= 1e-10)
    assert r[0] == 1.0


@settings(max_examples=15, deadline=None)
@given(
    cfg=dra_configs(),
    mu=st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
)
def test_availability_in_unit_interval(cfg, mu):
    a = dra_availability(cfg, RepairPolicy(mu=mu)).availability
    assert 0.0 < a <= 1.0


@settings(max_examples=50, deadline=None)
@given(
    requests=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=12,
    ),
    capacity=st.floats(min_value=0.1, max_value=200.0, allow_nan=False),
)
def test_b_prom_never_exceeds_bus_or_request(requests, capacity):
    """B_prom conservation: sum <= B_BUS and each promise <= its request."""
    out = promised_bandwidth(requests, capacity)
    assert out.sum() <= max(capacity, sum(requests)) + 1e-9
    if sum(requests) > capacity:
        assert out.sum() <= capacity * (1.0 + 1e-12)
    for promise, request in zip(out, requests):
        assert promise <= request + 1e-12

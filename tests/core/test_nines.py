"""Nines-notation tests."""

import pytest

from repro.core.nines import count_nines, from_nines, nines_notation


class TestCountNines:
    @pytest.mark.parametrize(
        "a, expected",
        [
            (0.5, 0),
            (0.9, 1),
            (0.95, 1),
            (0.99, 2),
            (0.999, 3),
            (0.9999, 4),
            (0.99994, 4),
            (0.99995, 4),
            (0.999940003600, 4),
            (0.9999999974, 8),
            (0.99999999964, 9),
            (0.0, 0),
        ],
    )
    def test_values(self, a, expected):
        assert count_nines(a) == expected

    def test_perfect_availability_caps(self):
        assert count_nines(1.0) == 16

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            count_nines(1.5)
        with pytest.raises(ValueError):
            count_nines(-0.1)

    def test_exact_decimal_boundaries(self):
        # Float representation of 1 - 0.9999 is slightly above 1e-4; the
        # guard epsilon must still count four nines.
        for k in range(1, 12):
            a = float("0." + "9" * k)
            assert count_nines(a) == k


class TestNotation:
    def test_paper_format(self):
        assert nines_notation(0.99994) == "9^4"
        assert nines_notation(0.9999999974) == "9^8"

    def test_degraded_plain_decimal(self):
        assert nines_notation(0.85) == "0.8500"


class TestFromNines:
    def test_roundtrip(self):
        for k in range(0, 10):
            assert count_nines(from_nines(k)) == k

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            from_nines(-1)

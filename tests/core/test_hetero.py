"""Heterogeneous performance-model tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hetero import HeterogeneousPerformanceModel
from repro.core.performance import PerformanceModel


class TestConstruction:
    def test_scalar_capacity_broadcast(self):
        m = HeterogeneousPerformanceModel([0.1, 0.2, 0.3], 10.0)
        np.testing.assert_allclose(m.capacities, [10.0, 10.0, 10.0])

    def test_invalid_loads(self):
        with pytest.raises(ValueError):
            HeterogeneousPerformanceModel([0.5, 1.0])
        with pytest.raises(ValueError):
            HeterogeneousPerformanceModel([0.5, -0.1])

    def test_mismatched_capacities(self):
        with pytest.raises(ValueError):
            HeterogeneousPerformanceModel([0.1, 0.2], [10.0])

    def test_too_few_lcs(self):
        with pytest.raises(ValueError):
            HeterogeneousPerformanceModel([0.5])


class TestDegradation:
    def test_single_fault_low_load_full_service(self):
        m = HeterogeneousPerformanceModel([0.15] * 6)
        out = m.degradation([0])
        np.testing.assert_allclose(out.percent, [100.0])

    def test_hot_card_needs_more(self):
        m = HeterogeneousPerformanceModel([0.9 - 0.2, 0.1, 0.1, 0.1])
        hot = m.degradation([0])
        cold = m.degradation([1])
        assert hot.required[0] > cold.required[0]

    def test_proportional_share_under_pressure(self):
        """Two faulty LCs with unequal demands scale back proportionally."""
        m = HeterogeneousPerformanceModel([0.8, 0.4, 0.9, 0.9], 10.0)
        out = m.degradation([0, 1])
        # pool = 2 * (1 - 0.9) * 10 = 2.0 < required total 12.0
        np.testing.assert_allclose(out.delivered.sum(), 2.0)
        assert out.delivered[0] / out.delivered[1] == pytest.approx(
            out.required[0] / out.required[1]
        )

    def test_bus_binds(self):
        m = HeterogeneousPerformanceModel([0.5] * 4, 10.0, b_bus=3.0)
        out = m.degradation([0, 1])
        assert out.delivered.sum() == pytest.approx(3.0)

    def test_all_faulty_rejected(self):
        m = HeterogeneousPerformanceModel([0.5, 0.5])
        with pytest.raises(ValueError):
            m.degradation([0, 1])

    def test_out_of_range_rejected(self):
        m = HeterogeneousPerformanceModel([0.5, 0.5])
        with pytest.raises(ValueError):
            m.degradation([7])

    def test_worst_single_fault_is_a_coolest_card(self):
        """Counter-intuitive but correct: losing a *cool* card is the
        worst single fault.  The binding quantity is the surviving pool
        of headroom, and failing a cool card leaves the hottest (lowest
        headroom) survivor set; failing the hottest card leaves the most
        headroom behind and is actually the best case."""
        loads = [0.85, 0.9, 0.95, 0.9, 0.85]
        m = HeterogeneousPerformanceModel(loads)
        worst_lc, pct = m.worst_single_fault()
        assert worst_lc in (0, 4)  # a coolest card
        assert pct < 50.0
        # And the hottest card's failure is actually the *best* case.
        best = max(
            m.degradation([lc]).aggregate_percent for lc in range(5)
        )
        assert best == pytest.approx(m.degradation([2]).aggregate_percent)


class TestUniformEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=9),
        load=st.floats(min_value=0.05, max_value=0.85),
        x_faulty=st.integers(min_value=1, max_value=8),
    )
    def test_reduces_to_paper_model(self, n, load, x_faulty):
        """Equal loads: the heterogeneous model gives exactly the paper's
        per-LC B_faulty for every fault count."""
        x_faulty = min(x_faulty, n - 1)
        hetero = HeterogeneousPerformanceModel.uniform(n, load)
        paper = PerformanceModel(n=n)
        out = hetero.degradation(range(x_faulty))
        expected = paper.bandwidth_to_faulty(x_faulty, load)
        np.testing.assert_allclose(out.delivered, expected, rtol=1e-9)

    def test_aggregate_percent_matches(self):
        hetero = HeterogeneousPerformanceModel.uniform(6, 0.7)
        paper = PerformanceModel(n=6)
        out = hetero.degradation(range(5))
        assert out.aggregate_percent == pytest.approx(
            paper.degradation_percent(5, 0.7)
        )

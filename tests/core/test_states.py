"""State-space type tests."""

import pytest

from repro.core.states import (
    AllHealthy,
    BusDown,
    Failed,
    InterZoneState,
    UAPDState,
    UAPIState,
    is_operational,
)


class TestStateTypes:
    def test_all_healthy_is_origin(self):
        assert AllHealthy == InterZoneState(0, 0)

    def test_states_hashable_and_distinct(self):
        states = {
            InterZoneState(0, 0),
            InterZoneState(1, 0),
            InterZoneState(0, 1),
            UAPIState(0),
            UAPDState(0),
            BusDown,
            Failed,
        }
        assert len(states) == 7

    def test_ua_states_not_confusable(self):
        assert UAPIState(1) != UAPDState(1)

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            InterZoneState(-1, 0)
        with pytest.raises(ValueError):
            UAPIState(-2)
        with pytest.raises(ValueError):
            UAPDState(-1)

    def test_string_forms(self):
        assert str(InterZoneState(2, 1)) == "(2,1)"
        assert str(UAPIState(3)) == "3_PI"
        assert str(UAPDState(0)) == "0_PD"
        assert str(BusDown) == "T'"
        assert str(Failed) == "F"


class TestOperationalPredicate:
    def test_failed_is_not_operational(self):
        assert not is_operational(Failed)

    @pytest.mark.parametrize(
        "state",
        [AllHealthy, InterZoneState(2, 1), UAPIState(0), UAPDState(1), BusDown],
    )
    def test_everything_else_operational(self, state):
        assert is_operational(state)

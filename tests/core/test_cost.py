"""Cost-effectiveness model tests."""

import pytest

from repro.core import CostModel, RepairPolicy, compare_designs
from repro.core.cost import spared_group_availability


class TestCostModel:
    def test_bdr_cost_linear(self):
        assert CostModel().bdr_cost(8) == pytest.approx(8.0)

    def test_sparing_cost_adds_spares(self):
        c = CostModel()
        assert c.sparing_cost(8, 2) == pytest.approx(8.0 + 2 * 1.10)

    def test_dra_cost_structure(self):
        c = CostModel()
        assert c.dra_cost(8) == pytest.approx(8 * 1.03 + 0.25)

    def test_dra_cheaper_than_sparing(self):
        c = CostModel()
        for n in (4, 8, 16):
            assert c.dra_cost(n) < c.sparing_cost(n, 1)


class TestSparedGroup:
    def test_better_than_unspared(self):
        rp = RepairPolicy.three_hours()
        a_spared = spared_group_availability(4, rp)
        a_plain = rp.mu / (rp.mu + 2e-5)
        assert a_spared > a_plain

    def test_smaller_groups_more_available(self):
        rp = RepairPolicy.three_hours()
        assert spared_group_availability(1, rp) > spared_group_availability(8, rp)

    def test_invalid_group(self):
        with pytest.raises(ValueError):
            spared_group_availability(0, RepairPolicy())


class TestCompareDesigns:
    def test_three_designs_returned(self):
        designs = compare_designs(n=8, n_protocols=2)
        assert len(designs) == 3
        labels = [d.label for d in designs]
        assert labels[0] == "BDR"
        assert "sparing" in labels[1]
        assert labels[2].startswith("DRA")

    def test_paper_economics_claim(self):
        """DRA must beat 1:1 sparing on BOTH cost and availability -- the
        quantified version of the paper's 'significant cost-savings as
        well as higher dependability'."""
        designs = compare_designs(n=8, n_protocols=2)
        _bdr, spared, dra = designs
        assert dra.cost < spared.cost
        assert dra.availability > spared.availability

    def test_everything_beats_plain_bdr(self):
        bdr, spared, dra = compare_designs(n=6, n_protocols=1)
        assert spared.availability > bdr.availability
        assert dra.availability > bdr.availability

    def test_downtime_property(self):
        bdr = compare_designs(n=6, n_protocols=1)[0]
        assert bdr.downtime_minutes_per_year == pytest.approx(
            (1 - bdr.availability) * 8766 * 60
        )

    def test_invalid_protocol_count(self):
        with pytest.raises(ValueError):
            compare_designs(n=4, n_protocols=5)

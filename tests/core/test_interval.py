"""Interval-availability tests."""

import numpy as np
import pytest

from repro.core import DRAConfig, RepairPolicy, bdr_availability, dra_availability
from repro.core.interval import bdr_interval_availability, dra_interval_availability


class TestBDRInterval:
    def test_starts_at_one(self):
        ia = bdr_interval_availability(np.array([0.0]))
        assert ia[0] == pytest.approx(1.0)

    def test_converges_to_steady_state(self):
        rp = RepairPolicy.three_hours()
        ia = bdr_interval_availability(np.array([5e6]), rp)
        a_inf = bdr_availability(rp).availability
        assert ia[0] == pytest.approx(a_inf, abs=1e-6)

    def test_monotone_decay_from_healthy_start(self):
        t = np.array([0.0, 1e4, 1e5, 1e6])
        ia = bdr_interval_availability(t)
        assert np.all(np.diff(ia) <= 1e-12)


class TestDRAInterval:
    def test_dra_above_bdr(self):
        t = np.array([1e4, 1e5])
        rp = RepairPolicy.half_day()
        ia_dra = dra_interval_availability(DRAConfig(n=5, m=3), t, rp)
        ia_bdr = bdr_interval_availability(t, rp)
        assert np.all(ia_dra > ia_bdr)

    def test_converges_to_steady_state(self):
        rp = RepairPolicy.three_hours()
        cfg = DRAConfig(n=3, m=2)
        ia = dra_interval_availability(cfg, np.array([5e7]), rp)
        a_inf = dra_availability(cfg, rp).availability
        assert ia[0] == pytest.approx(a_inf, abs=1e-7)

    def test_bounded(self):
        t = np.linspace(0.0, 1e5, 5)
        ia = dra_interval_availability(DRAConfig(n=4, m=2), t)
        assert np.all((0.0 <= ia) & (ia <= 1.0))

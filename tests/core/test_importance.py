"""Component-importance tests."""

import pytest

from repro.core import (
    DRAConfig,
    FailureRates,
    RepairPolicy,
    reliability_rate_sensitivity,
    unavailability_elasticities,
)
from repro.core.importance import RATE_FIELDS, _consistent


class TestConsistentPerturbation:
    def test_derived_rates_follow(self):
        base = FailureRates()
        perturbed = _consistent(base, "lam_lpi", 2e-5)
        perturbed.validate()
        assert perturbed.lam_lpi == 2e-5
        assert perturbed.lam_lc == pytest.approx(2e-5 + base.lam_lpd)
        assert perturbed.lam_pi == pytest.approx(2e-5 + base.lam_bc)

    def test_untouched_rates_stable(self):
        base = FailureRates()
        perturbed = _consistent(base, "lam_bus", 5e-6)
        assert perturbed.lam_lpd == base.lam_lpd
        assert perturbed.lam_pd == base.lam_pd


class TestElasticities:
    def test_all_fields_reported_sorted(self):
        out = unavailability_elasticities(DRAConfig(n=9, m=4))
        assert {r.field for r in out} == set(RATE_FIELDS)
        magnitudes = [abs(r.elasticity) for r in out]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_paper_claim_pi_dominates_pd(self):
        """"the number of PI units has a greater impact ... than the
        number of PDLU's" -- in rate terms, lam_lpi outranks lam_lpd."""
        out = {r.field: r.elasticity for r in
               unavailability_elasticities(DRAConfig(n=9, m=4))}
        assert out["lam_lpi"] > out["lam_lpd"] > 0.0

    def test_elasticities_positive(self):
        """Unavailability worsens with every failure rate."""
        out = unavailability_elasticities(
            DRAConfig(n=5, m=3), RepairPolicy.half_day()
        )
        assert all(r.elasticity > 0.0 for r in out)

    def test_two_failure_structure(self):
        """Every F path needs one LCUA-side and one covering-side event,
        so elasticities sum to ~2 (each path is a product of two rates)."""
        out = unavailability_elasticities(DRAConfig(n=9, m=4))
        assert sum(r.elasticity for r in out) == pytest.approx(2.0, abs=0.05)


class TestReliabilitySensitivity:
    def test_negative_derivatives(self):
        """Raising any failure rate can only lower R(t)."""
        out = reliability_rate_sensitivity(DRAConfig(n=6, m=3), 40_000.0)
        assert all(v < 0.0 for v in out.values())

    def test_pi_rate_most_damaging_when_rate_weighted(self):
        """Raw derivatives favor lam_lpd (only 3 covering PDLUs vs 7 PI
        pools), but weighted by the actual rates -- the realistic
        perturbation scale -- the PI side dominates, matching the paper."""
        out = reliability_rate_sensitivity(DRAConfig(n=9, m=4), 40_000.0)
        rates = FailureRates()
        assert abs(out["lam_lpi"] * rates.lam_lpi) > abs(
            out["lam_lpd"] * rates.lam_lpd
        )

"""Regression tests pinning every number the paper quotes.

These are the headline reproduction checks: if any fails, the build no
longer reproduces the paper.  Each test cites the sentence of Section 5 it
verifies.
"""

import numpy as np
import pytest

from repro.core import (
    DRAConfig,
    RepairPolicy,
    bdr_availability,
    bdr_reliability,
    dra_availability,
    dra_reliability,
)


class TestFigure6Claims:
    def test_bdr_below_half_at_40000_hours(self):
        """"this is in sharp contrast to BDR whose reliability drops down
        to less than 0.5" (by the 40,000-hour mark)."""
        r = bdr_reliability(np.array([40_000.0])).reliability[0]
        assert r < 0.5
        assert r == pytest.approx(np.exp(-0.8), rel=1e-9)

    @pytest.mark.parametrize("m", [4, 5, 6, 7, 8])
    def test_n9_m_ge_4_close_to_one_at_40000_hours(self, m):
        """"the reliability for N = 9 (and M >= 4) remains close to 1.0
        for the first 40,000 hours"."""
        r = dra_reliability(DRAConfig(n=9, m=m), np.array([40_000.0])).reliability[0]
        assert r > 0.95

    def test_minimal_config_reasonably_large_improvement(self):
        """"Even for M = 2 and N = 3, DRA offers reasonably large
        improvement in reliability over a comparable BDR"."""
        t = np.array([40_000.0])
        r_dra = dra_reliability(DRAConfig(n=3, m=2), t).reliability[0]
        r_bdr = bdr_reliability(t).reliability[0]
        assert r_dra - r_bdr > 0.3  # 0.85 vs 0.45

    def test_gains_shrink_with_m(self):
        """"gains in R(t) tend to shrink over successively increasing
        values of M and N" -- M > 4 curves are very close to each other."""
        t = np.array([40_000.0])
        r = {
            m: dra_reliability(DRAConfig(n=9, m=m), t).reliability[0]
            for m in (2, 4, 6, 8)
        }
        gain_2_to_4 = r[4] - r[2]
        gain_4_to_6 = r[6] - r[4]
        gain_6_to_8 = r[8] - r[6]
        assert gain_2_to_4 > gain_4_to_6 > gain_6_to_8 >= 0.0
        # "values of R(t) for M > 4 are very close to each other"
        assert r[8] - r[4] < 0.005

    def test_pi_units_matter_more_than_pdlus(self):
        """"the number of PI units has a greater impact on R(t) than the
        number of PDLU's"."""
        t = np.array([60_000.0])
        # Adding covering PI pools (N up, M fixed):
        gain_n = (
            dra_reliability(DRAConfig(n=6, m=2), t).reliability[0]
            - dra_reliability(DRAConfig(n=4, m=2), t).reliability[0]
        )
        # Adding covering PDLUs (M up, N fixed):
        gain_m = (
            dra_reliability(DRAConfig(n=9, m=6), t).reliability[0]
            - dra_reliability(DRAConfig(n=9, m=4), t).reliability[0]
        )
        assert gain_n > gain_m


class TestFigure7Claims:
    def test_bdr_nines(self):
        """BDR: 9^4 at mu = 1/3 and 9^3 at mu = 1/12."""
        assert bdr_availability(RepairPolicy.three_hours()).nines == 4
        assert bdr_availability(RepairPolicy.half_day()).nines == 3

    def test_single_coverer_nines(self):
        """"a single covering LC_inter (M = 2, N = 3) gives an
        availability figure of 9^8 for mu = 1/3 (or 9^7 for mu = 1/12)"."""
        cfg = DRAConfig(n=3, m=2)
        assert dra_availability(cfg, RepairPolicy.three_hours()).nines == 8
        assert dra_availability(cfg, RepairPolicy.half_day()).nines == 7

    @pytest.mark.parametrize("n, m", [(9, 4), (9, 6), (9, 8), (8, 5)])
    def test_saturation_nines(self, n, m):
        """"it saturates at 9^9 (or 9^8) with mu = 1/3 (or mu = 1/12) for
        all M >= 4"."""
        cfg = DRAConfig(n=n, m=m)
        assert dra_availability(cfg, RepairPolicy.three_hours()).nines == 9
        assert dra_availability(cfg, RepairPolicy.half_day()).nines == 8

    def test_availability_increases_with_m_and_n(self):
        rp = RepairPolicy.three_hours()
        a32 = dra_availability(DRAConfig(n=3, m=2), rp).availability
        a52 = dra_availability(DRAConfig(n=5, m=2), rp).availability
        a54 = dra_availability(DRAConfig(n=5, m=4), rp).availability
        assert a32 <= a52 <= a54


class TestFigure8Claims:
    def test_low_load_full_coverage(self):
        """"for L = 15% ... DRA does not suffer from any performance
        degradation and is able to completely support up to N - 1 faulty
        LC's at the required capacity (for N <= 6)"."""
        from repro.core.performance import PerformanceModel

        for n in (3, 4, 5, 6):
            m = PerformanceModel(n=n)
            for x in range(1, n):
                assert m.degradation_percent(x, 0.15) == pytest.approx(100.0)

    def test_worst_case_under_ten_percent(self):
        """"for X_faulty = 5 and a load of 70%, less than 10% of the
        required capacity is available"."""
        from repro.core.performance import PerformanceModel

        assert PerformanceModel(n=6).degradation_percent(5, 0.70) < 10.0

    def test_larger_n_higher_bandwidth_when_few_faults(self):
        """"A larger N results in higher values for B_faulty as long as
        the number of failed LC's is small"."""
        from repro.core.performance import PerformanceModel

        b6 = PerformanceModel(n=6).bandwidth_to_faulty(1, 0.7)
        b9 = PerformanceModel(n=9).bandwidth_to_faulty(1, 0.7)
        assert b9 >= b6

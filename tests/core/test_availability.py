"""Availability-model tests."""

import pytest

from repro.core import (
    DRAConfig,
    FailureRates,
    RepairPolicy,
    bdr_availability,
    dra_availability,
)
from repro.core.availability import (
    build_bdr_availability_chain,
    build_dra_availability_chain,
)
from repro.core.states import AllHealthy, Failed
from repro.markov import stationary_distribution
from repro.markov.stationary import is_irreducible


class TestChains:
    def test_bdr_chain_irreducible(self):
        assert is_irreducible(build_bdr_availability_chain())

    def test_dra_chain_irreducible(self):
        assert is_irreducible(build_dra_availability_chain(DRAConfig(n=6, m=3)))

    def test_repair_edges_target_all_healthy(self):
        chain = build_dra_availability_chain(
            DRAConfig(n=4, m=2), RepairPolicy(mu=0.5)
        )
        for s in chain.states:
            if s != AllHealthy:
                assert chain.rate(s, AllHealthy) >= 0.5


class TestBDRAvailability:
    def test_closed_form(self):
        for mu in (1.0 / 3.0, 1.0 / 12.0):
            res = bdr_availability(RepairPolicy(mu=mu))
            assert res.availability == pytest.approx(mu / (mu + 2e-5), rel=1e-12)

    def test_faster_repair_higher_availability(self):
        fast = bdr_availability(RepairPolicy.three_hours()).availability
        slow = bdr_availability(RepairPolicy.half_day()).availability
        assert fast > slow


class TestDRAAvailability:
    def test_dra_beats_bdr(self):
        for rp in (RepairPolicy.three_hours(), RepairPolicy.half_day()):
            a_dra = dra_availability(DRAConfig(n=3, m=2), rp).availability
            a_bdr = bdr_availability(rp).availability
            assert a_dra > a_bdr

    def test_monotone_in_n(self):
        rp = RepairPolicy.three_hours()
        values = [
            dra_availability(DRAConfig(n=n, m=2), rp).availability
            for n in (3, 5, 7, 9)
        ]
        assert all(b >= a - 1e-15 for a, b in zip(values, values[1:]))

    def test_stationary_methods_agree(self):
        chain = build_dra_availability_chain(DRAConfig(n=6, m=3))
        a = stationary_distribution(chain, method="linear")
        b = stationary_distribution(chain, method="nullspace")
        f = chain.index_of(Failed)
        assert a[f] == pytest.approx(b[f], rel=1e-4)

    def test_result_properties(self):
        res = dra_availability(DRAConfig(n=3, m=2))
        assert res.unavailability == pytest.approx(1.0 - res.availability)
        assert res.nines >= 7
        assert res.notation.startswith("9^")
        assert res.downtime_minutes_per_year < 1.0

    def test_custom_rates(self):
        worse = FailureRates().scaled(100.0)
        a_bad = dra_availability(DRAConfig(n=3, m=2), rates=worse).availability
        a_good = dra_availability(DRAConfig(n=3, m=2)).availability
        assert a_bad < a_good

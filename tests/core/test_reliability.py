"""Reliability-model tests: chain structure, closed forms, variants."""

import numpy as np
import pytest

from repro.core import DRAConfig, FailureRates, bdr_reliability, dra_reliability
from repro.core.reliability import (
    build_bdr_reliability_chain,
    build_dra_reliability_chain,
)
from repro.core.states import (
    AllHealthy,
    BusDown,
    Failed,
    InterZoneState,
    UAPDState,
    UAPIState,
)
from repro.markov import mean_time_to_absorption


class TestBDRChain:
    def test_closed_form(self):
        t = np.array([0.0, 10_000.0, 40_000.0, 100_000.0])
        res = bdr_reliability(t)
        np.testing.assert_allclose(res.reliability, np.exp(-2e-5 * t), rtol=1e-8)

    def test_mttf_is_inverse_rate(self):
        chain = build_bdr_reliability_chain()
        assert mean_time_to_absorption(chain) == pytest.approx(1.0 / 2e-5)


class TestDRAChainStructure:
    def test_state_count_paper_variant(self):
        # (N-2)(M-1) grid + (N-2) i_PI + (M-1) j_PD + T' + F.
        for n, m in [(3, 2), (6, 3), (9, 8)]:
            chain = build_dra_reliability_chain(DRAConfig(n=n, m=m))
            P, D = n - 2, m - 1
            assert chain.n_states == P * D + P + D + 2

    def test_state_count_extended_variant(self):
        for n, m in [(3, 2), (6, 3)]:
            chain = build_dra_reliability_chain(
                DRAConfig(n=n, m=m, variant="extended")
            )
            P, D = n - 2, m - 1
            assert chain.n_states == (P + 1) * (D + 1) + P + D + 2

    def test_failed_is_unique_absorbing_state(self):
        chain = build_dra_reliability_chain(DRAConfig(n=6, m=3))
        assert chain.absorbing_states() == (Failed,)

    def test_transition_rates_n3_m2(self):
        """Every edge of the minimal paper-variant chain, checked exactly."""
        r = FailureRates()
        chain = build_dra_reliability_chain(DRAConfig(n=3, m=2))
        # From (0,0): no covering transitions (truncated grid).
        assert chain.rate(AllHealthy, UAPIState(0)) == pytest.approx(r.lam_lpi)
        assert chain.rate(AllHealthy, UAPDState(0)) == pytest.approx(r.lam_lpd)
        assert chain.rate(AllHealthy, BusDown) == pytest.approx(r.lam_bus + r.lam_bc)
        assert chain.rate(AllHealthy, Failed) == 0.0
        # Zone-LCUA (paper variant): the last covering unit's failure is
        # fatal; the EIB/bus-controller portion diverts to T'.
        assert chain.rate(UAPIState(0), Failed) == pytest.approx(r.lam_pi)
        assert chain.rate(UAPDState(0), Failed) == pytest.approx(r.lam_pd)

    def test_paper_variant_zone_ua_goes_to_t_prime(self):
        r = FailureRates()
        chain = build_dra_reliability_chain(DRAConfig(n=3, m=2, variant="paper"))
        assert chain.rate(UAPIState(0), BusDown) == pytest.approx(r.lam_t_prime)
        assert chain.rate(UAPIState(0), Failed) == pytest.approx(r.lam_pi)

    def test_strict_variant_zone_ua_goes_to_failed(self):
        r = FailureRates()
        chain = build_dra_reliability_chain(DRAConfig(n=3, m=2, variant="strict"))
        assert chain.rate(UAPIState(0), BusDown) == 0.0
        assert chain.rate(UAPIState(0), Failed) == pytest.approx(
            r.lam_pi + r.lam_t_prime
        )

    def test_covering_pool_rates_scale_with_remaining(self):
        r = FailureRates()
        chain = build_dra_reliability_chain(DRAConfig(n=9, m=4))
        # From (0,0): 7 PI pools and 3 PDLUs at risk.
        assert chain.rate(AllHealthy, InterZoneState(1, 0)) == pytest.approx(
            7 * r.lam_pi
        )
        assert chain.rate(AllHealthy, InterZoneState(0, 1)) == pytest.approx(
            3 * r.lam_pd
        )
        # Deeper in the grid the multiplicity drops.
        assert chain.rate(InterZoneState(3, 1), InterZoneState(4, 1)) == pytest.approx(
            4 * r.lam_pi
        )

    def test_t_prime_exits_at_lc_rate(self):
        r = FailureRates()
        chain = build_dra_reliability_chain(DRAConfig(n=6, m=3))
        assert chain.rate(BusDown, Failed) == pytest.approx(r.lam_lc)

    def test_extended_variant_exhausted_pool_reachable(self):
        chain = build_dra_reliability_chain(DRAConfig(n=3, m=2, variant="extended"))
        r = FailureRates()
        # (0,0) -> (1,0): the only covering PI pool dies while LCUA healthy.
        assert chain.rate(AllHealthy, InterZoneState(1, 0)) == pytest.approx(r.lam_pi)
        # From (1,0) an LCUA PI failure is immediately fatal.
        assert chain.rate(InterZoneState(1, 0), Failed) == pytest.approx(r.lam_lpi)


class TestReliabilityCurves:
    def test_starts_at_one(self):
        res = dra_reliability(DRAConfig(n=6, m=3), np.array([0.0]))
        assert res.reliability[0] == pytest.approx(1.0)

    def test_monotone_nonincreasing(self):
        t = np.linspace(0.0, 200_000.0, 41)
        res = dra_reliability(DRAConfig(n=6, m=3), t)
        assert np.all(np.diff(res.reliability) <= 1e-12)

    def test_dra_beats_bdr_everywhere(self):
        t = np.linspace(1_000.0, 100_000.0, 20)
        bdr = bdr_reliability(t).reliability
        dra = dra_reliability(DRAConfig(n=3, m=2), t).reliability
        assert np.all(dra > bdr)

    def test_more_linecards_help(self):
        t = np.array([40_000.0])
        r_small = dra_reliability(DRAConfig(n=3, m=2), t).reliability[0]
        r_big = dra_reliability(DRAConfig(n=9, m=2), t).reliability[0]
        assert r_big > r_small

    def test_more_same_protocol_cards_help(self):
        t = np.array([60_000.0])
        r4 = dra_reliability(DRAConfig(n=9, m=4), t).reliability[0]
        r8 = dra_reliability(DRAConfig(n=9, m=8), t).reliability[0]
        assert r8 > r4

    def test_variant_ordering(self):
        """paper >= strict >= extended pointwise (each adds failure paths)."""
        t = np.linspace(10_000.0, 150_000.0, 8)
        r_paper = dra_reliability(DRAConfig(n=5, m=3, variant="paper"), t).reliability
        r_strict = dra_reliability(
            DRAConfig(n=5, m=3, variant="strict"), t
        ).reliability
        r_ext = dra_reliability(
            DRAConfig(n=5, m=3, variant="extended"), t
        ).reliability
        assert np.all(r_paper >= r_strict - 1e-12)
        assert np.all(r_strict >= r_ext - 1e-12)

    def test_at_interpolation(self):
        t = np.array([0.0, 10_000.0])
        res = bdr_reliability(t)
        mid = res.at(5_000.0)
        assert res.reliability[1] < mid < 1.0

    def test_custom_rates_flow_through(self):
        fast = FailureRates().scaled(10.0)
        t = np.array([10_000.0])
        r_fast = bdr_reliability(t, fast).reliability[0]
        r_slow = bdr_reliability(t).reliability[0]
        assert r_fast < r_slow

    def test_mismatched_result_shapes_rejected(self):
        from repro.core.reliability import ReliabilityResult

        with pytest.raises(ValueError, match="matching"):
            ReliabilityResult(
                times=np.zeros(3), reliability=np.zeros(2), label="bad"
            )

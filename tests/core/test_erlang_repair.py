"""Erlang-repair (fixed-repair-time) extension tests.

The paper's prose says repair "take[s] a fixed amount of time" but its
chains use an exponential rate; ``RepairPolicy(stages=k)`` interpolates
between the two (k = 1 exponential, k -> inf deterministic, same mean).
"""

import pytest

from repro.core import DRAConfig, RepairPolicy, bdr_availability, dra_availability
from repro.core.availability import build_dra_availability_chain
from repro.markov.stationary import is_irreducible


class TestRepairPolicyStages:
    def test_default_single_stage(self):
        assert RepairPolicy().stages == 1

    def test_invalid_stages_rejected(self):
        with pytest.raises(ValueError, match="stages"):
            RepairPolicy(stages=0)


class TestChainStructure:
    def test_stage_count_scales_state_space(self):
        base = build_dra_availability_chain(DRAConfig(n=3, m=2), RepairPolicy())
        erlang = build_dra_availability_chain(
            DRAConfig(n=3, m=2), RepairPolicy(stages=3)
        )
        # 1 healthy state + (n-1) degraded states per phase.
        degraded = base.n_states - 1
        assert erlang.n_states == 1 + 3 * degraded

    def test_erlang_chain_irreducible(self):
        chain = build_dra_availability_chain(
            DRAConfig(n=4, m=2), RepairPolicy(stages=4)
        )
        assert is_irreducible(chain)

    def test_phase_rate_preserves_mean(self):
        """Each phase runs at k*mu so the total repair mean stays 1/mu."""
        rp = RepairPolicy(mu=0.5, stages=4)
        chain = build_dra_availability_chain(DRAConfig(n=3, m=2), rp)
        from repro.core.states import BusDown

        assert chain.rate((BusDown, 1), (BusDown, 2)) == pytest.approx(2.0)


class TestDistributionEffect:
    def test_bdr_invariant_to_repair_distribution(self):
        """Renewal-reward: a single-failure-mode system's unavailability
        depends only on the repair *mean* -- an exact invariance the
        implementation must honor."""
        values = [
            bdr_availability(RepairPolicy(stages=k)).availability
            for k in (1, 2, 4, 8)
        ]
        for v in values[1:]:
            assert v == pytest.approx(values[0], abs=1e-14)

    def test_dra_improves_toward_deterministic_repair(self):
        """DRA's failure paths need a second failure *within* the repair
        window; removing the exponential's long tail makes that rarer, so
        unavailability falls monotonically with k."""
        u = [
            1.0 - dra_availability(DRAConfig(n=3, m=2), RepairPolicy(stages=k)).availability
            for k in (1, 2, 4, 8)
        ]
        assert all(b < a for a, b in zip(u, u[1:]))

    def test_effect_bounded_within_2x(self):
        """The exponential assumption is conservative by at most ~2x at
        the paper's rates -- no nines conclusion changes."""
        u1 = 1.0 - dra_availability(DRAConfig(n=3, m=2), RepairPolicy(stages=1)).availability
        u8 = 1.0 - dra_availability(DRAConfig(n=3, m=2), RepairPolicy(stages=8)).availability
        assert 1.0 < u1 / u8 < 2.0

    def test_nines_conclusions_stable(self):
        for k in (1, 4, 8):
            res = dra_availability(DRAConfig(n=3, m=2), RepairPolicy(stages=k))
            assert res.nines == 8

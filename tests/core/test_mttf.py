"""MTTF analysis tests."""

import pytest

from repro.core import DRAConfig, FailureRates, bdr_mttf, dra_mttf, mttf_improvement


class TestBDRMTTF:
    def test_closed_form(self):
        assert bdr_mttf().hours == pytest.approx(1.0 / 2e-5)

    def test_years_conversion(self):
        assert bdr_mttf().years == pytest.approx(50_000.0 / 8766.0)

    def test_custom_rates(self):
        fast = FailureRates().scaled(2.0)
        assert bdr_mttf(fast).hours == pytest.approx(25_000.0)


class TestDRAMTTF:
    def test_exceeds_bdr(self):
        assert dra_mttf(DRAConfig(n=3, m=2)).hours > bdr_mttf().hours

    def test_monotone_in_n(self):
        values = [dra_mttf(DRAConfig(n=n, m=2)).hours for n in (3, 5, 7, 9)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_monotone_in_m(self):
        values = [dra_mttf(DRAConfig(n=9, m=m)).hours for m in (2, 4, 6, 8)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_improvement_ratio(self):
        ratio = mttf_improvement(DRAConfig(n=9, m=4))
        assert 2.0 < ratio < 10.0

    def test_variant_ordering(self):
        paper = dra_mttf(DRAConfig(n=4, m=2, variant="paper")).hours
        ext = dra_mttf(DRAConfig(n=4, m=2, variant="extended")).hours
        assert paper >= ext

    def test_label(self):
        assert dra_mttf(DRAConfig(n=5, m=3)).label == "DRA(N=5,M=3)"

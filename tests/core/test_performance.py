"""Section 5.3 performance-model tests."""

import numpy as np
import pytest

from repro.core.performance import (
    PerformanceModel,
    bandwidth_to_faulty,
    degradation_series,
    promised_bandwidth,
)


class TestPromisedBandwidth:
    def test_undersubscribed_passthrough(self):
        out = promised_bandwidth([1.0, 2.0, 3.0], 10.0)
        np.testing.assert_allclose(out, [1.0, 2.0, 3.0])

    def test_oversubscribed_proportional(self):
        out = promised_bandwidth([6.0, 9.0], 10.0)
        np.testing.assert_allclose(out, [4.0, 6.0])

    def test_conservation_when_oversubscribed(self):
        out = promised_bandwidth([5.0, 7.0, 11.0], 12.0)
        assert out.sum() == pytest.approx(12.0)

    def test_exact_fit(self):
        out = promised_bandwidth([4.0, 6.0], 10.0)
        np.testing.assert_allclose(out, [4.0, 6.0])

    def test_empty_requests(self):
        assert promised_bandwidth([], 10.0).size == 0

    def test_negative_request_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            promised_bandwidth([-1.0], 10.0)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            promised_bandwidth([1.0], 0.0)


class TestPerformanceModel:
    def test_headroom_and_required(self):
        m = PerformanceModel(n=6, c_lc=10.0)
        assert m.headroom(0.3) == pytest.approx(7.0)
        assert m.required(0.3) == pytest.approx(3.0)

    def test_no_faults_full_service(self):
        m = PerformanceModel(n=6)
        assert m.degradation_percent(0, 0.5) == pytest.approx(100.0)

    def test_paper_endpoint_low_load(self):
        """L=15%: full required capacity through X_faulty = N-1 (N=6)."""
        m = PerformanceModel(n=6)
        for x in range(1, 6):
            assert m.degradation_percent(x, 0.15) == pytest.approx(100.0)

    def test_paper_endpoint_worst_case(self):
        """X_faulty=5, L=70%: less than 10% of required capacity."""
        m = PerformanceModel(n=6)
        pct = m.degradation_percent(5, 0.70)
        assert pct < 10.0
        assert pct == pytest.approx(100.0 * 3.0 / (5 * 7.0), rel=1e-9)

    def test_degradation_monotone_in_faults(self):
        m = PerformanceModel(n=6)
        series = [m.degradation_percent(x, 0.5) for x in range(1, 6)]
        assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))

    def test_larger_n_helps_at_small_x(self):
        small = PerformanceModel(n=4).bandwidth_to_faulty(2, 0.7)
        large = PerformanceModel(n=8).bandwidth_to_faulty(2, 0.7)
        assert large >= small

    def test_bus_capacity_binds(self):
        unbound = PerformanceModel(n=6, b_bus=None).bandwidth_to_faulty(1, 0.5)
        bound = PerformanceModel(n=6, b_bus=2.0).bandwidth_to_faulty(1, 0.5)
        assert bound == pytest.approx(2.0)
        assert unbound == pytest.approx(5.0)

    def test_default_bus_is_nonbinding(self):
        m = PerformanceModel(n=6)
        assert m.bus_capacity == pytest.approx(60.0)

    def test_x_faulty_out_of_range(self):
        m = PerformanceModel(n=6)
        with pytest.raises(ValueError, match="x_faulty"):
            m.bandwidth_to_faulty(6, 0.3)
        with pytest.raises(ValueError, match="x_faulty"):
            m.bandwidth_to_faulty(-1, 0.3)

    def test_invalid_load_rejected(self):
        m = PerformanceModel(n=6)
        with pytest.raises(ValueError, match="load"):
            m.bandwidth_to_faulty(1, 1.0)
        with pytest.raises(ValueError, match="load"):
            m.headroom(-0.1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PerformanceModel(n=1)
        with pytest.raises(ValueError):
            PerformanceModel(n=6, c_lc=0.0)
        with pytest.raises(ValueError):
            PerformanceModel(n=6, b_bus=-1.0)


class TestModuleFunctions:
    def test_functional_wrapper(self):
        assert bandwidth_to_faulty(5, 0.70, n=6) == pytest.approx(0.6)

    def test_degradation_series_shape(self):
        series = degradation_series([0.15, 0.7], n=6)
        assert set(series) == {0.15, 0.7}
        assert all(len(v) == 5 for v in series.values())

    def test_series_values_match_figure8(self):
        series = degradation_series([0.70], n=6)
        np.testing.assert_allclose(
            series[0.70],
            [100.0, 600.0 / 7.0, 300.0 / 7.0, 150.0 / 7.0, 60.0 / 7.0],
            rtol=1e-9,
        )

"""Fault-detection layer: self-tests, dissemination, anti-entropy."""

import pytest

from repro.chaos.detection import DetectionConfig
from repro.obs import trace as _trace
from repro.router import ComponentKind, Router, RouterConfig, RouterMode
from repro.traffic import wire_uniform_load


def make_router(seed=7, n=4, detection=None):
    r = Router(RouterConfig(n_linecards=n, mode=RouterMode.DRA, seed=seed))
    det = r.enable_detection(detection or DetectionConfig())
    return r, det


class TestLocalFaultView:
    def test_learn_forget_roundtrip(self):
        r, det = make_router()
        view = det.views[0]
        assert view.learn(1, ComponentKind.SRU)
        assert not view.learn(1, ComponentKind.SRU)  # no news
        assert view.is_failed(1, ComponentKind.SRU)
        assert view.any_failed(1)
        assert view.forget(1, ComponentKind.SRU)
        assert not view.forget(1, ComponentKind.SRU)
        assert not view.any_failed(1)
        assert view.believed() == {}  # empty entries pruned

    def test_reconcile_replaces_and_prunes(self):
        r, det = make_router()
        view = det.views[0]
        view.learn(2, ComponentKind.SRU)
        assert view.reconcile(2, {ComponentKind.LFE})
        assert view.failed_at(2) == {ComponentKind.LFE}
        assert view.reconcile(2, set())
        assert view.believed() == {}
        assert not view.reconcile(2, set())  # already empty: no change

    def test_eib_health_is_ground_truth(self):
        r, det = make_router()
        view = det.views[0]
        assert view.eib_healthy
        r.fail_eib()
        assert not view.eib_healthy


class TestDetection:
    def test_views_converge_after_detection(self):
        r, det = make_router()
        r.run(until=50e-6)
        r.inject_fault(1, ComponentKind.SRU)
        r.run(until=200e-6)
        for lc_id, view in det.views.items():
            assert view.is_failed(1, ComponentKind.SRU), f"LC{lc_id} still blind"
        assert len(det.detections()) == 1

    def test_detection_respects_latency_floor(self):
        cfg = DetectionConfig(detection_latency_s=40e-6)
        r, det = make_router(detection=cfg)
        r.run(until=10e-6)
        r.inject_fault(2, ComponentKind.LFE)
        r.run(until=500e-6)
        (latency,) = det.detection_latencies()
        assert latency >= cfg.detection_latency_s

    def test_repair_clears_views_everywhere(self):
        r, det = make_router()
        r.inject_fault(1, ComponentKind.SRU)
        r.run(until=200e-6)
        r.repair_fault(1, ComponentKind.SRU)
        r.run(until=400e-6)
        for view in det.views.values():
            assert not view.is_failed(1, ComponentKind.SRU)

    @pytest.mark.parametrize(
        "kind", [ComponentKind.SRU, ComponentKind.PDLU, ComponentKind.LFE]
    )
    def test_zero_coverage_fault_stays_invisible(self, kind):
        cfg = DetectionConfig(coverage=0.0)
        r, det = make_router(detection=cfg)
        r.inject_fault(1, kind)
        r.run(until=1e-3)
        assert det.detections() == []
        for view in det.views.values():
            assert not view.is_failed(1, kind)
        # Repairing a fault nobody ever believed must stay silent too:
        # no local_clear, no FLT_C on the wire.
        r.repair_fault(1, kind)
        r.run(until=2e-3)
        assert det.log == []

    def test_heartbeat_reconverges_after_lost_notifications(self):
        cfg = DetectionConfig(heartbeat_period_s=100e-6)
        r, det = make_router(detection=cfg)
        assert r.eib is not None
        r.eib.control.loss_prob = 1.0  # every FLT_N vanishes in flight
        r.inject_fault(1, ComponentKind.SRU)
        r.run(until=300e-6)
        assert det.views[1].is_failed(1, ComponentKind.SRU)  # local knowledge
        assert not det.views[0].is_failed(1, ComponentKind.SRU)  # lost FLT_N
        r.eib.control.loss_prob = 0.0  # medium restored
        r.run(until=600e-6)  # >= one heartbeat period later
        for view in det.views.values():
            assert view.is_failed(1, ComponentKind.SRU)

    def test_permanent_control_loss_views_never_converge(self):
        """With the control medium permanently eating every packet the
        heartbeat anti-entropy is powerless: FLT_N and HB alike vanish,
        so only the faulty LC itself ever knows (its self-test is
        local), and every remote view stays blind indefinitely."""
        cfg = DetectionConfig(heartbeat_period_s=100e-6)
        r, det = make_router(detection=cfg)
        assert r.eib is not None
        r.eib.control.loss_prob = 1.0  # permanent, never restored
        r.inject_fault(1, ComponentKind.SRU)
        r.run(until=2e-3)  # ~20 heartbeat periods
        assert len(det.detections()) == 1  # local detection still works
        assert det.views[1].is_failed(1, ComponentKind.SRU)
        for lc_id, view in det.views.items():
            if lc_id != 1:
                assert not view.is_failed(1, ComponentKind.SRU), (
                    f"LC{lc_id} learned a fault over a dead medium"
                )
        assert not [e for e in det.log if e.event == "remote_learn"]
        assert not [e for e in det.log if e.event == "hb_reconcile"]

    def test_repair_racing_flt_n_in_flight(self):
        """Repair lands while the FLT_N broadcast is still in flight (or
        just delivered): remote LCs may transiently believe a fault that
        no longer exists, but the trailing FLT_C -- and failing that,
        the next heartbeats -- reconverge every view to clean."""
        cfg = DetectionConfig(heartbeat_period_s=100e-6)
        r, det = make_router(detection=cfg)
        r.inject_fault(1, ComponentKind.SRU)
        # Advance in sub-microsecond steps to the instant of local
        # detection, then repair immediately: the FLT_N is at best a
        # few bit-times into its CSMA/CD transmission.
        while not det.detections():
            r.run(until=r.engine.now + 5e-7)
            assert r.engine.now < 1e-3, "fault never detected"
        assert det.views[1].is_failed(1, ComponentKind.SRU)
        r.repair_fault(1, ComponentKind.SRU)
        assert not det.views[1].is_failed(1, ComponentKind.SRU)
        r.run(until=r.engine.now + 1e-3)  # FLT_C + several heartbeats
        for lc_id, view in det.views.items():
            assert not view.is_failed(1, ComponentKind.SRU), (
                f"LC{lc_id} kept a stale belief after the repair race"
            )
        # The repair was disseminated, not silently absorbed.
        assert [e for e in det.log if e.event == "local_clear"]

    def test_dead_bus_controller_suspends_selftest(self):
        r, det = make_router()
        r.inject_fault(1, ComponentKind.BUS_CONTROLLER)
        r.run(until=20e-6)
        r.inject_fault(1, ComponentKind.SRU)
        r.run(until=500e-6)
        # LC1's maintenance loop is deaf and mute: the SRU fault stays
        # undetected (self-test suspended), so no remote view learns it.
        assert not det.views[0].is_failed(1, ComponentKind.SRU)

    def test_requires_dra_mode(self):
        r = Router(RouterConfig(n_linecards=4, mode=RouterMode.BDR, seed=1))
        with pytest.raises(RuntimeError, match="DRA"):
            r.enable_detection()


class TestOracleGap:
    """Between fault onset and detection the planner works from stale
    views: traffic keeps being planned onto dead hardware and drops."""

    def test_stale_views_drop_packets_until_detection(self):
        cfg = DetectionConfig(detection_latency_s=200e-6, selftest_period_s=20e-6)
        r, det = make_router(seed=11, detection=cfg)
        wire_uniform_load(r, 0.4)
        tracer = _trace.Tracer()
        with _trace.tracing(tracer):
            r.run(until=100e-6)
            onset = r.engine.now
            r.inject_fault(1, ComponentKind.SRU)
            r.run(until=1.5e-3)
        drops = [
            ev
            for ev in tracer.events
            if ev.kind == "router.packet_drop"
            and ev.data["reason"] == "component_failed_mid_flight"
        ]
        detections = [ev for ev in tracer.events if ev.kind == "detect.local_detect"]
        assert detections, "fault never detected"
        detected_at = detections[0].t
        assert detected_at - onset >= cfg.detection_latency_s
        gap_drops = [ev for ev in drops if onset <= ev.t <= detected_at]
        assert gap_drops, "no drops inside the detection-latency window"

    def test_oracle_mode_unaffected(self):
        # Without enable_detection the planner still sees the global
        # FaultMap instantly: no detection events, coverage immediate.
        r = Router(RouterConfig(n_linecards=4, mode=RouterMode.DRA, seed=11))
        wire_uniform_load(r, 0.4)
        r.run(until=100e-6)
        r.inject_fault(1, ComponentKind.SRU)
        r.run(until=1.5e-3)
        assert r.detector is None

"""Chaos campaigns: determinism, zero violations, violation reporting."""

import json

import pytest

from repro.chaos.campaign import (
    CampaignConfig,
    _trace_window,
    run_campaign,
    run_schedule,
)

SMALL = CampaignConfig(seeds=3, duration_s=0.002, drain_s=0.012)


class TestConfig:
    def test_schedule_seeds_distinct_and_stable(self):
        cfg = CampaignConfig(seeds=8)
        seeds = [cfg.schedule_seed(i) for i in range(8)]
        assert len(set(seeds)) == 8
        assert seeds == [cfg.schedule_seed(i) for i in range(8)]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CampaignConfig(seeds=0)
        with pytest.raises(ValueError):
            CampaignConfig(duration_s=0.0)


class TestSchedule:
    def test_schedule_is_deterministic(self):
        a = run_schedule(SMALL, 0)
        b = run_schedule(SMALL, 0)
        assert a == b

    def test_schedule_summary_shape(self):
        s = run_schedule(SMALL, 1)
        assert s["offered"] == s["delivered"] + s["dropped"]
        assert s["violations"] == []
        json.dumps(s)  # JSON-serialisable throughout


class TestCampaign:
    def test_zero_violations_and_jobs_identical(self):
        r1 = run_campaign(SMALL, jobs=1)
        r2 = run_campaign(SMALL, jobs=2)
        assert json.dumps(r1, sort_keys=True) == json.dumps(r2, sort_keys=True)
        assert r1["totals"]["violations"] == 0
        assert r1["schema"] == "repro-chaos"
        assert len(r1["schedules"]) == SMALL.seeds

    def test_trace_window_replay_captures_events(self):
        window = _trace_window(SMALL, 0)
        assert 0 < len(window) <= SMALL.trace_events
        assert all({"seq", "t", "kind", "data"} <= set(ev) for ev in window)


class TestPolicyMatrix:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            run_schedule(
                CampaignConfig(seeds=1, coverage_policy="greedy"), 0
            )

    @pytest.mark.parametrize("base_seed", [0, 1, 12345])
    def test_static_policy_bit_identical_to_default(self, base_seed):
        # coverage_policy="static" must be a pure refactor of the
        # pre-planner-v2 code path: byte-identical schedules (and
        # jobs-independent) for every base seed.
        default = CampaignConfig(
            seeds=2, base_seed=base_seed, duration_s=0.002, drain_s=0.012
        )
        explicit = CampaignConfig(
            seeds=2,
            base_seed=base_seed,
            duration_s=0.002,
            drain_s=0.012,
            coverage_policy="static",
        )
        r1 = run_campaign(default, jobs=1)
        r2 = run_campaign(explicit, jobs=2)
        assert json.dumps(r1["schedules"], sort_keys=True) == json.dumps(
            r2["schedules"], sort_keys=True
        )

    def test_adaptive_policy_holds_invariants_and_jobs_identity(self):
        cfg = CampaignConfig(
            seeds=3, duration_s=0.002, drain_s=0.012, coverage_policy="adaptive"
        )
        r1 = run_campaign(cfg, jobs=1)
        r2 = run_campaign(cfg, jobs=2)
        assert json.dumps(r1, sort_keys=True) == json.dumps(r2, sort_keys=True)
        assert r1["totals"]["violations"] == 0
        assert r1["config"]["coverage_policy"] == "adaptive"

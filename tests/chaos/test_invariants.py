"""Invariant checks: clean routers pass, doctored ones are caught."""

from repro.chaos.invariants import check_invariants
from repro.router import ComponentKind, Router, RouterConfig, RouterMode
from repro.router.faults import FaultEvent
from repro.traffic import wire_uniform_load


def run_clean_router(seed=3):
    r = Router(RouterConfig(n_linecards=4, mode=RouterMode.DRA, seed=seed))
    sources = wire_uniform_load(r, 0.3)
    r.run(until=2e-3)
    for src in sources:
        src.stop()
    r.run(until=14e-3)  # drain past the reassembly timeout
    return r


class FakeInjector:
    def __init__(self, log):
        self.log = log


class TestCleanRouter:
    def test_no_violations(self):
        r = run_clean_router()
        assert check_invariants(r) == []

    def test_detection_layer_clean(self):
        r = Router(RouterConfig(n_linecards=4, mode=RouterMode.DRA, seed=5))
        det = r.enable_detection()
        sources = wire_uniform_load(r, 0.3)
        r.run(until=1e-3)
        r.inject_fault(1, ComponentKind.SRU)
        r.run(until=2e-3)
        r.repair_fault(1, ComponentKind.SRU)
        for src in sources:
            src.stop()
        r.run(until=14e-3)
        assert check_invariants(r, None, det, settle_s=1e-3) == []


class TestViolationsCaught:
    def test_conservation_breach(self):
        r = run_clean_router()
        r.stats.offered += 1
        checks = [v.check for v in check_invariants(r)]
        assert "packet_conservation" in checks

    def test_fault_map_disagreement(self):
        r = run_clean_router()
        r.faults.mark_failed(0, ComponentKind.SRU)  # map says dead, HW healthy
        checks = [v.check for v in check_invariants(r)]
        assert "fault_map_agreement" in checks

    def test_capacity_overcommit(self):
        r = run_clean_router()
        lc = r.linecards[0]
        lc.committed_bps = lc.capacity_bps * 2
        checks = [v.check for v in check_invariants(r)]
        assert "capacity_accounting" in checks

    def test_stale_view_flagged(self):
        r = Router(RouterConfig(n_linecards=4, mode=RouterMode.DRA, seed=5))
        det = r.enable_detection()
        r.run(until=1e-3)
        det.views[0].learn(2, ComponentKind.LFE)  # bogus belief, no fault
        violations = check_invariants(r, None, det, settle_s=0.0)
        assert any(v.check == "view_convergence" for v in violations)


class TestFaultLogChecks:
    def test_monotone_and_lifecycle_ok(self):
        log = [
            FaultEvent(1.0, 0, ComponentKind.SRU, "fail"),
            FaultEvent(2.0, 0, ComponentKind.SRU, "repair"),
            FaultEvent(3.0, 1, ComponentKind.LFE, "degrade", "fail_slow"),
            FaultEvent(4.0, 1, ComponentKind.LFE, "restore", "fail_slow"),
            FaultEvent(5.0, None, None, "ctl_degrade", "control"),
            FaultEvent(6.0, None, None, "ctl_restore", "control"),
        ]
        r = run_clean_router()
        assert check_invariants(r, FakeInjector(log)) == []

    def test_non_monotone_times(self):
        log = [
            FaultEvent(2.0, 0, ComponentKind.SRU, "fail"),
            FaultEvent(1.0, 0, ComponentKind.SRU, "repair"),
        ]
        r = run_clean_router()
        checks = [v.check for v in check_invariants(r, FakeInjector(log))]
        assert "fault_log_monotone" in checks

    def test_double_fail(self):
        log = [
            FaultEvent(1.0, 0, ComponentKind.SRU, "fail"),
            FaultEvent(2.0, 0, ComponentKind.SRU, "fail"),
        ]
        r = run_clean_router()
        checks = [v.check for v in check_invariants(r, FakeInjector(log))]
        assert "fault_log_lifecycle" in checks

    def test_repair_without_fail(self):
        log = [FaultEvent(1.0, 0, ComponentKind.SRU, "repair")]
        r = run_clean_router()
        checks = [v.check for v in check_invariants(r, FakeInjector(log))]
        assert "fault_log_lifecycle" in checks

    def test_restore_without_degrade(self):
        log = [FaultEvent(1.0, 0, ComponentKind.SRU, "restore", "fail_slow")]
        r = run_clean_router()
        checks = [v.check for v in check_invariants(r, FakeInjector(log))]
        assert "fault_log_lifecycle" in checks
